//! A memory controller with FR-FCFS scheduling over DRAM banks.
//!
//! The controller owns several banks, each with a row buffer. Requests wait
//! in per-bank queues; when a bank frees up, the *first-ready,
//! first-come-first-served* (FR-FCFS, Table 1) policy picks a queued
//! request whose row is already open, falling back to the oldest request.
//! The shared data channel serializes response bursts across banks.
//!
//! Because the surrounding simulator delivers requests in global arrival
//! order, scheduling is resolved incrementally: each [`enqueue`] finalizes
//! every service decision that starts strictly before the new arrival (a
//! later arrival can no longer change those), and [`flush`] drains the
//! rest. This realizes FR-FCFS exactly for the arrival-ordered streams the
//! simulator produces.
//!
//! [`enqueue`]: MemoryController::enqueue
//! [`flush`]: MemoryController::flush

use crate::timing::DramTiming;
use hoploc_obs::Sink;
use std::fmt;

/// Row-buffer management policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RowPolicy {
    /// Leave the accessed row open (FR-FCFS exploits subsequent hits).
    #[default]
    Open,
    /// Precharge after every access: every request pays the full
    /// activate+access cost, but row conflicts never stall. The classic
    /// alternative, exposed for the ablation harness.
    Closed,
}

/// Configuration of one memory controller.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct McConfig {
    /// Number of DRAM banks behind the controller. Table 1 lists 4 banks
    /// per device with 4 active row buffers per DIMM; 8 independent banks
    /// per controller reproduces the §6.2 balance where one controller
    /// satisfies a 16-core cluster's demand for most applications but is
    /// overrun by the row-miss-heavy fma3d and minighost.
    pub banks: usize,
    /// Row-buffer size in bytes (Table 1: 4 KB, same as the page size).
    pub row_bytes: u64,
    /// Independent data channels per controller; response bursts serialize
    /// per channel. §6.2 assumes "the number of channels per memory
    /// controller is sufficiently large" for M1 to perform well.
    pub channels: usize,
    /// Device timing.
    pub timing: DramTiming,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
    /// When `true`, requests are served at a fixed row-hit latency with no
    /// bank contention — the *optimal scheme* of §2, which "does not incur
    /// any additional latency due to bank contention".
    pub ideal: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            banks: 8,
            row_bytes: 4096,
            channels: 2,
            timing: DramTiming::default(),
            row_policy: RowPolicy::default(),
            ideal: false,
        }
    }
}

/// A finished memory request, reported back to the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Completion {
    /// Caller-supplied identifier.
    pub token: u64,
    /// Cycle at which the response data leaves the controller (for a
    /// dropped request: when the final failed attempt released the bank).
    pub finish: u64,
    /// Cycles the request waited before service began. For retried
    /// requests this covers the wait since the last requeue only.
    pub queue_cycles: u64,
    /// Cycles of actual DRAM service (including the channel burst).
    pub service_cycles: u64,
    /// The request exhausted its retry budget and carries no data; the
    /// simulator delivers an error response instead of the line.
    pub dropped: bool,
}

/// A window of degraded service on one DRAM bank.
///
/// While `from <= cycle < until`, every service attempt that *starts* in
/// the window is stretched by `stall_cycles`, and — when `error_period > 0`
/// — fails transiently with deterministic rate `1/error_period`, decided by
/// hashing `(plan seed, token, attempt)`. Failed attempts re-enter the bank
/// queue under the controller's [`RetryPolicy`] until the retry cap drops
/// them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BankFault {
    /// Bank index within the controller.
    pub bank: u16,
    /// First cycle of the window (inclusive).
    pub from: u64,
    /// End of the window (exclusive).
    pub until: u64,
    /// Extra busy cycles charged to every attempt starting in the window.
    pub stall_cycles: u64,
    /// Mean attempts per transient error (`0` = never error, `1` = every
    /// attempt in the window errors).
    pub error_period: u64,
}

impl BankFault {
    /// Whether the window is active at `cycle`.
    pub fn active_at(&self, cycle: u64) -> bool {
        self.from <= cycle && cycle < self.until
    }
}

/// Bounded exponential backoff with a per-request retry cap.
///
/// Attempt `k` (0-based) that fails transiently re-arrives after
/// `min(base_backoff << k, max_backoff)` cycles; after `max_retries`
/// failed attempts the request is dropped (completion with
/// [`Completion::dropped`] set). The cap is what guarantees termination
/// under any fault plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Backoff after the first failed attempt (clamped to ≥ 1 cycle).
    pub base_backoff: u64,
    /// Upper bound on any single backoff.
    pub max_backoff: u64,
    /// Failed attempts allowed before the request is dropped.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base_backoff: 16,
            max_backoff: 4096,
            max_retries: 4,
        }
    }
}

impl RetryPolicy {
    /// Backoff after failed attempt `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shift = attempt.min(20);
        self.base_backoff
            .max(1)
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff.max(1))
    }
}

/// The fault inputs one controller receives from a compiled fault plan.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct McFaults {
    /// Plan seed; mixed with (token, attempt) to decide transient errors.
    pub seed: u64,
    /// Bank-fault windows on this controller's banks.
    pub banks: Vec<BankFault>,
    /// Retry/backoff policy for transient errors.
    pub retry: RetryPolicy,
}

/// Deterministic transient-error decision: splitmix64-style finalizer over
/// `(seed, token, attempt)`, failing one in `period` attempts on average.
fn transient_failure(seed: u64, token: u64, attempt: u32, period: u64) -> bool {
    if period == 0 {
        return false;
    }
    let mut z = seed
        ^ token.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ((attempt as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z.is_multiple_of(period)
}

/// Aggregate controller statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct McStats {
    /// Requests served.
    pub served: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Sum of queue waiting cycles (the time-integral of queue length).
    pub total_queue_cycles: u64,
    /// Sum of service cycles.
    pub total_service_cycles: u64,
    /// Largest queue depth observed across banks.
    pub max_queue_depth: usize,
    /// Service attempts that failed transiently in a fault window
    /// (`transient_errors == retries + dropped`).
    pub transient_errors: u64,
    /// Failed attempts that re-entered a bank queue after backoff.
    pub retries: u64,
    /// Requests dropped after exhausting the retry cap (not counted in
    /// [`served`](Self::served)).
    pub dropped: u64,
    /// Extra bank-busy cycles charged by active stall windows.
    pub fault_stall_cycles: u64,
    /// Prefetch-class requests served. Kept out of [`served`](Self::served)
    /// and the queue/service totals so demand-side conservation
    /// (`served + dropped == off-chip demand`) and latency averages keep
    /// their meaning with prefetching enabled.
    pub pf_served: u64,
    /// Prefetch-class requests dropped on a transient error. Prefetches
    /// are speculative: they are never retried and never re-homed.
    pub pf_dropped: u64,
}

impl McStats {
    /// Mean queueing latency per request.
    pub fn avg_queue_latency(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_queue_cycles as f64 / self.served as f64
        }
    }

    /// Mean total memory latency (queue + service) per request — the
    /// paper's "memory latency includes the time spent in the queue".
    pub fn avg_memory_latency(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            (self.total_queue_cycles + self.total_service_cycles) as f64 / self.served as f64
        }
    }

    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.served as f64
        }
    }

    /// Average bank-queue occupancy over an execution of `elapsed` cycles
    /// (Figure 18's utilization metric): the time-integral of queue length
    /// divided by elapsed time.
    pub fn queue_occupancy(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.total_queue_cycles as f64 / elapsed as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Pending {
    token: u64,
    row: u64,
    arrival: u64,
    seq: u64,
    /// Failed service attempts so far (0 until a transient error).
    attempt: u32,
    /// Speculative prefetch-class request: accounted separately, dropped
    /// (never retried) on a transient error, invisible to the sink's
    /// demand mirrors.
    prefetch: bool,
}

#[derive(Clone, Debug)]
struct Bank {
    open_row: Option<u64>,
    free_at: u64,
    queue: Vec<Pending>,
}

/// One memory controller.
///
/// # Examples
///
/// ```
/// use hoploc_mem::{McConfig, MemoryController};
///
/// let mut mc = MemoryController::new(McConfig::default());
/// let mut done = mc.enqueue(0x1000, 1, 100);
/// done.extend(mc.flush());
/// assert_eq!(done.len(), 1);
/// assert!(done[0].finish > 100);
/// ```
#[derive(Clone, Debug)]
pub struct MemoryController {
    config: McConfig,
    banks: Vec<Bank>,
    channel_free_at: Vec<u64>,
    stats: McStats,
    seq: u64,
    /// Injected bank faults; `None` keeps the scheduling path byte-identical
    /// to a fault-free controller.
    faults: Option<McFaults>,
}

impl MemoryController {
    /// Creates an idle controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks or a zero row size.
    pub fn new(config: McConfig) -> Self {
        assert!(config.banks > 0, "controller must have at least one bank");
        assert!(config.row_bytes > 0, "row size must be positive");
        assert!(
            config.channels > 0,
            "controller must have at least one channel"
        );
        Self {
            config,
            banks: (0..config.banks)
                .map(|_| Bank {
                    open_row: None,
                    free_at: 0,
                    queue: Vec::new(),
                })
                .collect(),
            channel_free_at: vec![0; config.channels],
            stats: McStats::default(),
            seq: 0,
            faults: None,
        }
    }

    /// Installs bank-fault windows and the retry policy. Empty bank-fault
    /// lists clear injection and restore the exact fault-free scheduling
    /// path. Panics on a bank index outside the controller (plans are
    /// validated upstream; this is a backstop).
    pub fn set_faults(&mut self, faults: McFaults) {
        if faults.banks.is_empty() {
            self.faults = None;
            return;
        }
        for f in &faults.banks {
            assert!(
                (f.bank as usize) < self.config.banks,
                "bank fault on {} but controller has {} banks",
                f.bank,
                self.config.banks
            );
        }
        self.faults = Some(faults);
    }

    /// Active stall cycles and transient-failure decision for an attempt on
    /// `bank` starting at `start`. Stalls from overlapping windows add up; a
    /// failure from any window fails the attempt.
    fn fault_at(&self, bank: usize, start: u64, token: u64, attempt: u32) -> (u64, bool) {
        let Some(f) = &self.faults else {
            return (0, false);
        };
        let mut stall = 0;
        let mut fail = false;
        for w in f.banks.iter().filter(|w| w.bank as usize == bank) {
            if w.active_at(start) {
                stall += w.stall_cycles;
                fail = fail || transient_failure(f.seed, token, attempt, w.error_period);
            }
        }
        (stall, fail)
    }

    /// The controller's configuration.
    pub fn config(&self) -> &McConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// Submits a request for physical address `addr` arriving at cycle
    /// `now`, returning any completions this arrival finalizes.
    ///
    /// Requests must be submitted in non-decreasing `now` order; this is
    /// checked in debug builds.
    pub fn enqueue(&mut self, addr: u64, token: u64, now: u64) -> Vec<Completion> {
        self.enqueue_obs(addr, token, now, 0, &Sink::disabled())
    }

    /// [`enqueue`](Self::enqueue) with observability: queue-depth samples
    /// and per-bank service spans recorded into `sink`, attributed to
    /// controller `mc`. The untraced [`enqueue`](Self::enqueue) delegates
    /// here with a disabled sink, so traced and untraced runs share one
    /// scheduling path and the mirrored counters match
    /// [`stats`](Self::stats) by construction.
    pub fn enqueue_obs(
        &mut self,
        addr: u64,
        token: u64,
        now: u64,
        mc: u16,
        sink: &Sink,
    ) -> Vec<Completion> {
        self.enqueue_class_obs(addr, token, now, mc, false, sink)
    }

    /// [`enqueue_obs`](Self::enqueue_obs) with an explicit request class.
    /// Prefetch-class requests share the banks, channels, and FR-FCFS
    /// scheduling (they contend with demand exactly as real traffic
    /// would), but are accounted in [`McStats::pf_served`] /
    /// [`McStats::pf_dropped`] instead of the demand totals, are dropped
    /// on the *first* transient error (speculative work is never worth a
    /// retry), and leave the sink's demand mirrors untouched.
    pub fn enqueue_class_obs(
        &mut self,
        addr: u64,
        token: u64,
        now: u64,
        mc: u16,
        prefetch: bool,
        sink: &Sink,
    ) -> Vec<Completion> {
        if self.config.ideal {
            // Optimal scheme: fixed row-hit service, no queueing, no bank
            // or channel contention.
            let service = self.config.timing.row_hit_cycles + self.config.timing.burst_cycles;
            if prefetch {
                self.stats.pf_served += 1;
            } else {
                self.stats.served += 1;
                self.stats.row_hits += 1;
                self.stats.total_service_cycles += service;
                let row = addr / self.config.row_bytes;
                let bank = (row % self.config.banks as u64) as u16;
                sink.bank_service(mc, bank, token, now, now, now + service, true, 0);
            }
            // The ideal controller abstracts banks away entirely, so bank
            // faults don't apply to it (MC outages are handled above it, in
            // the simulator's re-homing).
            return vec![Completion {
                token,
                finish: now + service,
                queue_cycles: 0,
                service_cycles: service,
                dropped: false,
            }];
        }
        // Finalize all service decisions that start before this arrival.
        let mut done = self.drain_until(now, mc, sink);
        let row = addr / self.config.row_bytes;
        let bank = (row % self.config.banks as u64) as usize;
        self.banks[bank].queue.push(Pending {
            token,
            row,
            arrival: now,
            seq: self.seq,
            attempt: 0,
            prefetch,
        });
        self.seq += 1;
        let depth = self.banks[bank].queue.len();
        if depth > self.stats.max_queue_depth {
            self.stats.max_queue_depth = depth;
        }
        sink.mc_enqueue(mc, depth, now);
        // The new arrival itself may start service immediately.
        done.extend(self.drain_until(now + 1, mc, sink));
        done
    }

    /// Drains every remaining queued request, returning their completions.
    /// Call once no further arrivals are possible.
    pub fn flush(&mut self) -> Vec<Completion> {
        self.flush_obs(0, &Sink::disabled())
    }

    /// [`flush`](Self::flush) with observability (see
    /// [`enqueue_obs`](Self::enqueue_obs)).
    pub fn flush_obs(&mut self, mc: u16, sink: &Sink) -> Vec<Completion> {
        self.drain_until(u64::MAX, mc, sink)
    }

    /// Advances scheduling up to (and including) cycle `now`, finalizing
    /// every service decision that starts at or before it. The simulator
    /// calls this from poll events so blocked requesters make progress even
    /// when no further arrivals occur.
    pub fn poll(&mut self, now: u64) -> Vec<Completion> {
        self.poll_obs(now, 0, &Sink::disabled())
    }

    /// [`poll`](Self::poll) with observability (see
    /// [`enqueue_obs`](Self::enqueue_obs)).
    pub fn poll_obs(&mut self, now: u64, mc: u16, sink: &Sink) -> Vec<Completion> {
        self.drain_until(now.saturating_add(1), mc, sink)
    }

    /// The earliest cycle at which a queued request could begin service, or
    /// `None` when no requests are pending. The simulator schedules its
    /// next poll at this time.
    pub fn earliest_pending_start(&self) -> Option<u64> {
        self.banks
            .iter()
            .filter(|b| !b.queue.is_empty())
            .map(|b| {
                let earliest = b
                    .queue
                    .iter()
                    .map(|p| p.arrival)
                    .min()
                    .expect("invariant: this bank passed the non-empty filter above");
                b.free_at.max(earliest)
            })
            .min()
    }

    /// Serves queued requests whose service would start strictly before
    /// `horizon`.
    fn drain_until(&mut self, horizon: u64, mc: u16, sink: &Sink) -> Vec<Completion> {
        let mut done = Vec::new();
        for b in 0..self.banks.len() {
            loop {
                let bank = &self.banks[b];
                if bank.queue.is_empty() {
                    break;
                }
                let earliest = bank
                    .queue
                    .iter()
                    .map(|p| p.arrival)
                    .min()
                    .expect("invariant: the loop breaks before this when the queue is empty");
                let start = bank.free_at.max(earliest);
                if start >= horizon {
                    break;
                }
                // FR-FCFS among requests already waiting at `start`:
                // row hits first, then oldest (by submission order).
                let candidates = self.banks[b]
                    .queue
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.arrival <= start);
                let open = self.banks[b].open_row;
                let pick = candidates
                    .min_by_key(|(_, p)| (if Some(p.row) == open { 0u8 } else { 1u8 }, p.seq))
                    .map(|(i, _)| i)
                    .expect(
                        "invariant: start >= the queue's minimum arrival, so at least \
                         the earliest-arriving request passes the arrival filter",
                    );
                let p = self.banks[b].queue.swap_remove(pick);
                let hit = self.config.row_policy == RowPolicy::Open
                    && self.banks[b].open_row == Some(p.row);
                let core_service = if hit {
                    self.config.timing.row_hit_cycles
                } else {
                    self.config.timing.row_miss_cycles
                };
                // Fault windows active at the attempt's start stretch the
                // access and may fail it transiently.
                let (stall, fail) = self.fault_at(b, start, p.token, p.attempt);
                if stall > 0 && !p.prefetch {
                    self.stats.fault_stall_cycles += stall;
                    sink.bank_stall(mc, b as u16, p.token, start, stall);
                }
                // Bank busy for the (possibly stalled) access; a successful
                // response burst then serializes on the bank's data channel.
                let bank_done = start + core_service + stall;
                if fail {
                    // The failed attempt occupied the bank and activated the
                    // row, but no data moved: no channel burst, not served.
                    self.banks[b].free_at = bank_done;
                    self.banks[b].open_row = match self.config.row_policy {
                        RowPolicy::Open => Some(p.row),
                        RowPolicy::Closed => None,
                    };
                    if p.prefetch {
                        // Speculative: drop on first failure, no retry, no
                        // demand-side error accounting or sink mirror.
                        self.stats.pf_dropped += 1;
                        done.push(Completion {
                            token: p.token,
                            finish: bank_done,
                            queue_cycles: start - p.arrival,
                            service_cycles: bank_done - start,
                            dropped: true,
                        });
                        continue;
                    }
                    self.stats.transient_errors += 1;
                    let retry = self.faults.as_ref().map(|f| f.retry).unwrap_or_default();
                    if p.attempt >= retry.max_retries {
                        self.stats.dropped += 1;
                        sink.mc_drop(mc, p.token, bank_done);
                        done.push(Completion {
                            token: p.token,
                            finish: bank_done,
                            queue_cycles: start - p.arrival,
                            service_cycles: bank_done - start,
                            dropped: true,
                        });
                    } else {
                        let backoff = retry.backoff(p.attempt);
                        self.stats.retries += 1;
                        sink.mc_retry(mc, p.token, bank_done, backoff);
                        // Re-enter the queue as a fresh arrival after the
                        // backoff; a new seq makes it younger than every
                        // waiting request, so retries can't starve others.
                        self.banks[b].queue.push(Pending {
                            token: p.token,
                            row: p.row,
                            arrival: bank_done + backoff,
                            seq: self.seq,
                            attempt: p.attempt + 1,
                            prefetch: false,
                        });
                        self.seq += 1;
                    }
                    continue;
                }
                let ch = b % self.config.channels;
                let burst_start = bank_done.max(self.channel_free_at[ch]);
                let finish = burst_start + self.config.timing.burst_cycles;
                self.channel_free_at[ch] = finish;
                self.banks[b].free_at = bank_done;
                self.banks[b].open_row = match self.config.row_policy {
                    RowPolicy::Open => Some(p.row),
                    RowPolicy::Closed => None,
                };
                let queue_cycles = start - p.arrival;
                let service_cycles = finish - start;
                if p.prefetch {
                    self.stats.pf_served += 1;
                } else {
                    self.stats.served += 1;
                    if hit {
                        self.stats.row_hits += 1;
                    }
                    self.stats.total_queue_cycles += queue_cycles;
                    self.stats.total_service_cycles += service_cycles;
                    sink.bank_service(
                        mc,
                        b as u16,
                        p.token,
                        p.arrival,
                        start,
                        finish,
                        hit,
                        self.banks[b].queue.len(),
                    );
                }
                done.push(Completion {
                    token: p.token,
                    finish,
                    queue_cycles,
                    service_cycles,
                    dropped: false,
                });
            }
        }
        done
    }
}

impl fmt::Display for MemoryController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MC: {} served, {:.1}% row hits, avg queue {:.1}cy",
            self.stats.served,
            self.stats.row_hit_rate() * 100.0,
            self.stats.avg_queue_latency(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(McConfig::default())
    }

    #[test]
    fn single_request_served_at_row_miss_cost() {
        let mut m = mc();
        let mut done = m.enqueue(0, 7, 100);
        done.extend(m.flush());
        assert_eq!(done.len(), 1);
        let c = done[0];
        assert_eq!(c.token, 7);
        assert_eq!(c.queue_cycles, 0);
        let t = DramTiming::default();
        assert_eq!(c.finish, 100 + t.row_miss_cycles + t.burst_cycles);
    }

    #[test]
    fn second_access_to_same_row_hits() {
        let mut m = mc();
        let mut done = m.enqueue(64, 1, 0);
        done.extend(m.enqueue(128, 2, 10_000)); // same 4KB row, long after
        done.extend(m.flush());
        assert_eq!(done.len(), 2);
        assert_eq!(m.stats().row_hits, 1);
    }

    #[test]
    fn queued_request_waits() {
        let mut m = mc();
        m.enqueue(0, 1, 0);
        m.enqueue(0, 2, 1); // same bank, same row, must wait for bank
        let done = m.flush();
        let c2 = done.iter().find(|c| c.token == 2).unwrap();
        assert!(c2.queue_cycles > 0, "second request must queue");
    }

    #[test]
    fn fr_fcfs_prefers_row_hit() {
        let mut m = mc();
        let row = 4096u64 * 16; // bank 0 (row 16 % 16 == 0)
        let other_row = 4096u64 * 32; // also bank 0 (row 32 % 16 == 0)
        m.enqueue(row, 1, 0); // opens `row`
                              // Both arrive while bank is busy: FCFS order is (2: other_row, 3: row).
        m.enqueue(other_row, 2, 1);
        m.enqueue(row, 3, 2);
        let done = m.flush();
        let f2 = done.iter().find(|c| c.token == 2).unwrap().finish;
        let f3 = done.iter().find(|c| c.token == 3).unwrap().finish;
        assert!(
            f3 < f2,
            "row-hit request must be served before older row-miss"
        );
    }

    #[test]
    fn different_banks_serve_in_parallel() {
        let mut m = mc();
        m.enqueue(0, 1, 0); // bank 0, channel 0
        m.enqueue(4096, 2, 0); // bank 1, channel 1
        let done = m.flush();
        let t = DramTiming::default();
        for c in &done {
            // Neither waits for a bank; only channel serialization differs.
            assert!(c.queue_cycles == 0);
            assert!(c.finish <= t.row_miss_cycles + 2 * t.burst_cycles);
        }
    }

    #[test]
    fn channel_serializes_bursts() {
        let mut m = mc();
        // Banks 0 and 4 share data channel 0 (bank % channels).
        let mut done = m.enqueue(0, 1, 0);
        done.extend(m.enqueue(4 * 4096, 2, 0));
        done.extend(m.flush());
        let mut finishes: Vec<u64> = done.iter().map(|c| c.finish).collect();
        finishes.sort_unstable();
        assert!(
            finishes[1] >= finishes[0] + DramTiming::default().burst_cycles,
            "bursts must not overlap on the channel"
        );
    }

    #[test]
    fn ideal_mode_is_flat_latency() {
        let mut m = MemoryController::new(McConfig {
            ideal: true,
            ..McConfig::default()
        });
        let t = DramTiming::default();
        for k in 0..100 {
            let done = m.enqueue(0, k, 50);
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].finish, 50 + t.row_hit_cycles + t.burst_cycles);
            assert_eq!(done[0].queue_cycles, 0);
        }
        assert!(m.flush().is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mc();
        for k in 0..10 {
            m.enqueue(k * 64, k, k);
        }
        m.flush();
        let s = m.stats();
        assert_eq!(s.served, 10);
        assert!(s.avg_memory_latency() > 0.0);
        assert!(
            s.row_hit_rate() > 0.0,
            "sequential lines in one row should hit"
        );
    }

    #[test]
    fn queue_occupancy_grows_with_load() {
        let light = {
            let mut m = mc();
            for k in 0..20 {
                m.enqueue(0, k, k * 10_000);
            }
            m.flush();
            m.stats().queue_occupancy(200_000)
        };
        let heavy = {
            let mut m = mc();
            for k in 0..20 {
                m.enqueue(0, k, k);
            }
            m.flush();
            m.stats().queue_occupancy(200_000)
        };
        assert!(heavy > light);
    }

    #[test]
    fn closed_row_policy_never_hits() {
        let mut m = MemoryController::new(McConfig {
            row_policy: RowPolicy::Closed,
            ..McConfig::default()
        });
        let mut done = m.enqueue(64, 1, 0);
        done.extend(m.enqueue(128, 2, 10_000)); // same row, far apart
        done.extend(m.flush());
        assert_eq!(done.len(), 2);
        assert_eq!(m.stats().row_hits, 0, "closed-row policy must not hit");
    }

    #[test]
    fn enqueue_obs_mirrors_stats_into_sink() {
        use hoploc_obs::{ObsConfig, Topology};
        let topo = Topology {
            mesh_width: 1,
            mesh_height: 1,
            mcs: 2,
            banks_per_mc: 8,
        };
        let sink = Sink::recording(topo, ObsConfig::default());
        let mut m = mc();
        for k in 0..30 {
            m.enqueue_obs((k % 3) * 4096, k, k * 5, 1, &sink);
        }
        m.flush_obs(1, &sink);
        let rep = sink.into_report(10_000).unwrap();
        let s = m.stats();
        assert_eq!(rep.counter_family("mc.served")[1], s.served);
        assert_eq!(rep.counter_family("mc.row_hits")[1], s.row_hits);
        assert_eq!(
            rep.counter_family("mc.queue_cycles")[1],
            s.total_queue_cycles
        );
        assert_eq!(
            rep.counter_family("mc.service_cycles")[1],
            s.total_service_cycles
        );
        // Other controller's slots stay untouched, and per-bank slots sum to
        // the controller totals.
        assert_eq!(rep.counter_family("mc.served")[0], 0);
        let per_bank: u64 = rep.counter_family("mc.bank.served")[8..16].iter().sum();
        assert_eq!(per_bank, s.served);
    }

    #[test]
    fn ideal_mode_records_flat_services() {
        use hoploc_obs::{ObsConfig, Topology};
        let topo = Topology {
            mesh_width: 1,
            mesh_height: 1,
            mcs: 1,
            banks_per_mc: 8,
        };
        let sink = Sink::recording(topo, ObsConfig::default());
        let mut m = MemoryController::new(McConfig {
            ideal: true,
            ..McConfig::default()
        });
        m.enqueue_obs(0, 1, 10, 0, &sink);
        let rep = sink.into_report(100).unwrap();
        assert_eq!(rep.counter_family("mc.served")[0], 1);
        assert_eq!(rep.counter_family("mc.row_hits")[0], 1);
        assert_eq!(rep.counter_family("mc.queue_cycles")[0], 0);
        let h = rep.registry().histogram("mc.queue_wait_cycles").unwrap();
        assert_eq!(h.quantile(1.0), 0, "ideal mode never queues");
    }

    fn always_faulty(period: u64, retry: RetryPolicy) -> McFaults {
        McFaults {
            seed: 42,
            banks: (0..8)
                .map(|b| BankFault {
                    bank: b,
                    from: 0,
                    until: u64::MAX,
                    stall_cycles: 0,
                    error_period: period,
                })
                .collect(),
            retry,
        }
    }

    #[test]
    fn stall_window_stretches_service() {
        let mut m = mc();
        m.set_faults(McFaults {
            seed: 1,
            banks: vec![BankFault {
                bank: 0,
                from: 0,
                until: u64::MAX,
                stall_cycles: 100,
                error_period: 0,
            }],
            retry: RetryPolicy::default(),
        });
        let mut done = m.enqueue(0, 1, 0);
        done.extend(m.flush());
        let t = DramTiming::default();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finish, t.row_miss_cycles + 100 + t.burst_cycles);
        assert!(!done[0].dropped);
        assert_eq!(m.stats().fault_stall_cycles, 100);
        assert_eq!(m.stats().transient_errors, 0);
    }

    #[test]
    fn transient_error_retries_then_succeeds_outside_window() {
        let mut m = mc();
        // Only cycle 0 is in the window; error_period 1 fails the first
        // attempt, and the backoff re-arrival lands outside it.
        m.set_faults(McFaults {
            seed: 9,
            banks: vec![BankFault {
                bank: 0,
                from: 0,
                until: 1,
                stall_cycles: 0,
                error_period: 1,
            }],
            retry: RetryPolicy::default(),
        });
        let mut done = m.enqueue(0, 5, 0);
        done.extend(m.flush());
        assert_eq!(done.len(), 1);
        assert!(!done[0].dropped);
        let s = m.stats();
        assert_eq!((s.served, s.retries, s.dropped), (1, 1, 0));
        let t = DramTiming::default();
        assert!(
            done[0].finish > t.row_miss_cycles + t.burst_cycles,
            "the retry must cost time"
        );
    }

    #[test]
    fn retry_cap_drops_the_request() {
        let mut m = mc();
        let retry = RetryPolicy {
            base_backoff: 4,
            max_backoff: 16,
            max_retries: 3,
        };
        m.set_faults(always_faulty(1, retry));
        let mut done = m.enqueue(0, 5, 0);
        done.extend(m.flush());
        assert_eq!(
            done.len(),
            1,
            "a dropped request still completes exactly once"
        );
        assert!(done[0].dropped);
        let s = m.stats();
        assert_eq!(s.served, 0);
        assert_eq!(s.retries, 3);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.transient_errors, s.retries + s.dropped);
    }

    #[test]
    fn conservation_and_determinism_under_heavy_faults() {
        let run = || {
            let mut m = mc();
            m.set_faults(always_faulty(3, RetryPolicy::default()));
            let mut done = Vec::new();
            for k in 0..200u64 {
                done.extend(m.enqueue((k % 16) * 4096, k, k * 7));
            }
            done.extend(m.flush());
            (done, *m.stats())
        };
        let (done, stats) = run();
        // Every token completes exactly once, served or dropped.
        let mut tokens: Vec<u64> = done.iter().map(|c| c.token).collect();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), 200, "no lost or duplicated tokens");
        assert_eq!(stats.served + stats.dropped, 200);
        assert_eq!(stats.transient_errors, stats.retries + stats.dropped);
        // Same plan, same arrivals: bit-identical outcome.
        let (done2, stats2) = run();
        assert_eq!(done, done2);
        assert_eq!(stats, stats2);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let r = RetryPolicy {
            base_backoff: 16,
            max_backoff: 100,
            max_retries: 10,
        };
        assert_eq!(r.backoff(0), 16);
        assert_eq!(r.backoff(1), 32);
        assert_eq!(r.backoff(2), 64);
        assert_eq!(r.backoff(3), 100, "capped at max_backoff");
        assert_eq!(r.backoff(63), 100, "huge attempts don't overflow");
        let zero = RetryPolicy {
            base_backoff: 0,
            max_backoff: 0,
            max_retries: 1,
        };
        assert_eq!(zero.backoff(0), 1, "backoff is clamped to at least 1");
    }

    #[test]
    fn empty_faults_are_inert() {
        let drive = |m: &mut MemoryController| {
            let mut done = Vec::new();
            for k in 0..50u64 {
                done.extend(m.enqueue((k % 5) * 64, k, k * 11));
            }
            done.extend(m.flush());
            done
        };
        let mut clean = mc();
        let mut cleared = mc();
        cleared.set_faults(McFaults::default());
        assert_eq!(drive(&mut clean), drive(&mut cleared));
        assert_eq!(clean.stats(), cleared.stats());
        assert_eq!(clean.stats().transient_errors, 0);
    }

    #[test]
    #[should_panic(expected = "banks")]
    fn out_of_range_bank_fault_panics() {
        mc().set_faults(McFaults {
            seed: 0,
            banks: vec![BankFault {
                bank: 8, // one past the last bank of the default config
                from: 0,
                until: 1,
                stall_cycles: 1,
                error_period: 0,
            }],
            retry: RetryPolicy::default(),
        });
    }

    #[test]
    fn prefetch_class_is_accounted_separately() {
        let sink = Sink::disabled();
        let mut m = mc();
        let mut done = m.enqueue_class_obs(0, 1, 0, 0, true, &sink);
        done.extend(m.enqueue_class_obs(4096, 2, 0, 0, false, &sink));
        done.extend(m.flush());
        assert_eq!(done.len(), 2);
        let s = m.stats();
        assert_eq!(s.pf_served, 1);
        assert_eq!(s.served, 1, "demand totals must exclude prefetches");
        // The prefetch's queue/service time never enters the demand
        // latency averages.
        let pf = done.iter().find(|c| c.token == 1).unwrap();
        assert!(pf.service_cycles > 0);
        assert_eq!(
            s.total_service_cycles,
            done.iter().find(|c| c.token == 2).unwrap().service_cycles
        );
    }

    #[test]
    fn prefetch_contends_with_demand_for_the_bank() {
        let sink = Sink::disabled();
        let mut clean = mc();
        let mut clean_done = clean.enqueue(16 * 4096, 1, 5);
        clean_done.extend(clean.flush());
        let lone = clean_done[0].finish;
        let mut m = mc();
        // A prefetch arrives first and occupies bank 0; the demand behind
        // it (same bank, different row) must wait — prefetches share the
        // physical pipe.
        m.enqueue_class_obs(0, 9, 0, 0, true, &sink);
        let mut done = m.enqueue_class_obs(16 * 4096, 1, 5, 0, false, &sink);
        done.extend(m.flush());
        let demand = done.iter().find(|c| c.token == 1).unwrap();
        assert!(
            demand.finish > lone,
            "demand behind a prefetch must be delayed ({} !> {lone})",
            demand.finish
        );
        assert!(demand.queue_cycles > 0);
    }

    #[test]
    fn prefetch_transient_error_drops_without_retry() {
        let sink = Sink::disabled();
        let mut m = mc();
        m.set_faults(always_faulty(1, RetryPolicy::default()));
        let mut done = m.enqueue_class_obs(0, 3, 0, 0, true, &sink);
        done.extend(m.flush());
        assert_eq!(done.len(), 1);
        assert!(done[0].dropped, "first failure must drop the prefetch");
        let s = m.stats();
        assert_eq!(s.pf_dropped, 1);
        assert_eq!(s.retries, 0, "prefetches are never retried");
        assert_eq!(s.dropped, 0, "demand drop counter must stay clean");
        assert_eq!(s.transient_errors, 0);
    }

    #[test]
    fn ideal_mode_keeps_prefetch_out_of_demand_stats() {
        let sink = Sink::disabled();
        let mut m = MemoryController::new(McConfig {
            ideal: true,
            ..McConfig::default()
        });
        let done = m.enqueue_class_obs(0, 1, 10, 0, true, &sink);
        assert_eq!(done.len(), 1);
        assert!(!done[0].dropped);
        assert_eq!(m.stats().pf_served, 1);
        assert_eq!(m.stats().served, 0);
        assert_eq!(m.stats().total_service_cycles, 0);
    }

    #[test]
    fn demand_only_streams_ignore_the_class_flag() {
        // enqueue() delegates through the class path with prefetch=false:
        // the pf counters stay zero and everything else is unchanged.
        let mut m = mc();
        for k in 0..20 {
            m.enqueue((k % 4) * 4096, k, k * 3);
        }
        m.flush();
        assert_eq!(m.stats().pf_served, 0);
        assert_eq!(m.stats().pf_dropped, 0);
        assert_eq!(m.stats().served, 20);
    }

    #[test]
    fn completions_eventually_all_returned() {
        let mut m = mc();
        let mut got = 0;
        for k in 0..50 {
            got += m.enqueue((k % 8) * 4096, k, k * 3).len();
        }
        got += m.flush().len();
        assert_eq!(got, 50);
    }
}
