//! Property-based tests of the OS layer and the simulator's conservation
//! invariants.

use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh, NodeId};
use hoploc_ptest::run_cases;
use hoploc_sim::{Access, Os, PagePolicy, SimConfig, Simulator, ThreadTrace, TraceWorkload};

fn mapping() -> L2ToMcMapping {
    L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners)
}

#[test]
fn translation_is_stable_and_page_preserving() {
    run_cases("translation_is_stable_and_page_preserving", 32, |rng| {
        let vaddrs = rng.vec_u64(1..100, 0..1 << 24);
        let m = mapping();
        let mut os = Os::new(4096, 1 << 28, 4, PagePolicy::Interleaved);
        let mut first: std::collections::HashMap<u64, u64> = Default::default();
        for &v in &vaddrs {
            let p = os.translate(v, NodeId(0), &m);
            assert_eq!(p % 4096, v % 4096, "page offset must be preserved");
            let vpn = v / 4096;
            if let Some(&prev) = first.get(&vpn) {
                assert_eq!(p / 4096, prev, "translation must be stable");
            } else {
                first.insert(vpn, p / 4096);
            }
        }
    });
}

#[test]
fn distinct_pages_get_distinct_frames() {
    run_cases("distinct_pages_get_distinct_frames", 32, |rng| {
        let pages: std::collections::HashSet<u64> =
            rng.vec_u64(1..200, 0..10_000).into_iter().collect();
        let m = mapping();
        let mut os = Os::new(4096, 1 << 30, 4, PagePolicy::FirstTouch);
        let mut frames = std::collections::HashSet::new();
        for &vpn in &pages {
            let p = os.translate(vpn * 4096, NodeId((vpn % 64) as u16), &m);
            assert!(frames.insert(p / 4096), "frame reuse for vpn {vpn}");
        }
    });
}

#[test]
fn first_touch_lands_on_toucher_cluster() {
    run_cases("first_touch_lands_on_toucher_cluster", 64, |rng| {
        let page = rng.u64_in(0..1000);
        let node = rng.u16_in(0..64);
        let m = mapping();
        let mut os = Os::new(4096, 1 << 28, 4, PagePolicy::FirstTouch);
        let p = os.translate(page * 4096, NodeId(node), &m);
        let mc = os.mc_of_paddr(p);
        assert!(m.mcs_of_node(NodeId(node)).contains(&mc));
    });
}

#[test]
fn simulation_conserves_accesses() {
    run_cases("simulation_conserves_accesses", 32, |rng| {
        let n_streams = rng.usize_in(1..6);
        let threads: Vec<ThreadTrace> = (0..n_streams)
            .map(|_| {
                let node = rng.u16_in(0..64);
                let n_accs = rng.usize_in(1..40);
                ThreadTrace::new(
                    NodeId(node),
                    (0..n_accs)
                        .map(|_| Access {
                            vaddr: rng.u64_in(0..1 << 20),
                            write: false,
                            gap: rng.u32_in(0..10),
                            ref_id: 0,
                        })
                        .collect(),
                )
            })
            .collect();
        let total: u64 = threads.iter().map(|t| t.accesses.len() as u64).sum();
        let w = TraceWorkload::single("prop", threads);
        let cfg = SimConfig::scaled();
        let stats = Simulator::new(cfg, mapping(), PagePolicy::Interleaved).run(&w);
        assert_eq!(stats.total_accesses, total);
        // Access-path accounting: every access is an L1 hit, an L2-level
        // hit, a cache-to-cache transfer, or an off-chip fetch.
        assert_eq!(
            stats.l1_hits + stats.l2_hits + stats.cache_to_cache + stats.offchip_accesses,
            total
        );
        // Off-chip requests recorded per (node, MC) must total the count.
        let matrix: u64 = stats.node_mc_requests.iter().flatten().sum();
        assert_eq!(matrix, stats.offchip_accesses);
        assert!(stats.exec_cycles > 0 || total == 0);
    });
}

#[test]
fn mlp_never_slows_execution() {
    run_cases("mlp_never_slows_execution", 32, |rng| {
        let n_accs = rng.usize_in(10..60);
        let accs: Vec<(u64, u32)> = (0..n_accs)
            .map(|_| (rng.u64_in(0..1 << 18), rng.u32_in(0..6)))
            .collect();
        let traces = || {
            vec![ThreadTrace::new(
                NodeId(0),
                accs.iter()
                    .map(|&(v, g)| Access {
                        vaddr: v,
                        write: false,
                        gap: g,
                        ref_id: 0,
                    })
                    .collect(),
            )]
        };
        let mut blocking = SimConfig::scaled();
        blocking.mlp = 1;
        let mut overlapped = SimConfig::scaled();
        overlapped.mlp = 8;
        let w1 = TraceWorkload::single("b", traces());
        let s1 = Simulator::new(blocking, mapping(), PagePolicy::Interleaved).run(&w1);
        let s8 = Simulator::new(overlapped, mapping(), PagePolicy::Interleaved).run(&w1);
        assert!(
            s8.exec_cycles <= s1.exec_cycles,
            "more MSHRs made a single thread slower: {} > {}",
            s8.exec_cycles,
            s1.exec_cycles
        );
    });
}
