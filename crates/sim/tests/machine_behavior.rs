//! Behavioral scenario tests for the event-driven machine: MSHR overlap,
//! FR-FCFS poll paths, traffic classification, and the optimal mode.

use hoploc_layout::{Granularity, L2Mode};
use hoploc_noc::{L2ToMcMapping, Mesh, NodeId};
use hoploc_sim::{Access, PagePolicy, SimConfig, Simulator, ThreadTrace, TraceWorkload};

fn small() -> (SimConfig, L2ToMcMapping) {
    let cfg = SimConfig {
        mesh: Mesh::new(4, 4),
        granularity: Granularity::CacheLine,
        ..SimConfig::scaled()
    };
    let mapping = L2ToMcMapping::nearest_cluster(cfg.mesh, &cfg.placement);
    (cfg, mapping)
}

fn stream(node: u16, lines: u64, stride: u64, gap: u32) -> ThreadTrace {
    ThreadTrace::new(
        NodeId(node),
        (0..lines)
            .map(|k| Access {
                vaddr: k * stride,
                write: false,
                gap,
                ref_id: 0,
            })
            .collect(),
    )
}

#[test]
fn mlp_overlap_shortens_miss_streams() {
    let (mut cfg, mapping) = small();
    let w = TraceWorkload::single("t", vec![stream(5, 512, 256, 1)]);
    cfg.mlp = 1;
    let blocking = Simulator::new(cfg.clone(), mapping.clone(), PagePolicy::Interleaved).run(&w);
    cfg.mlp = 8;
    let overlapped = Simulator::new(cfg, mapping, PagePolicy::Interleaved).run(&w);
    assert!(
        (overlapped.exec_cycles as f64) < 0.7 * blocking.exec_cycles as f64,
        "8 MSHRs should overlap a pure miss stream: {} vs {}",
        overlapped.exec_cycles,
        blocking.exec_cycles
    );
    assert_eq!(overlapped.offchip_accesses, blocking.offchip_accesses);
}

#[test]
fn bursty_arrivals_exercise_the_poll_path() {
    // Many same-cycle misses from many nodes force queued requests whose
    // completions can only surface via MC polls — the run must still
    // conserve and terminate.
    let (mut cfg, mapping) = small();
    cfg.mlp = 4;
    let threads: Vec<ThreadTrace> = (0..16).map(|n| stream(n, 128, 4096, 0)).collect();
    let total: u64 = threads.iter().map(|t| t.accesses.len() as u64).sum();
    let w = TraceWorkload::single("burst", threads);
    let stats = Simulator::new(cfg, mapping, PagePolicy::Interleaved).run(&w);
    assert_eq!(stats.total_accesses, total);
    let served: u64 = stats.mc.iter().map(|m| m.served).sum();
    assert_eq!(
        served, stats.offchip_accesses,
        "every off-chip request served"
    );
}

#[test]
fn offchip_messages_are_classified_offchip() {
    let (cfg, mapping) = small();
    let w = TraceWorkload::single("t", vec![stream(0, 256, 256, 2)]);
    let stats = Simulator::new(cfg, mapping, PagePolicy::Interleaved).run(&w);
    // Each off-chip access yields one request + one response message.
    assert_eq!(stats.net.off_chip.messages, 2 * stats.offchip_accesses);
}

#[test]
fn shared_l2_hits_travel_on_chip() {
    let (mut cfg, mapping) = small();
    cfg.l2_mode = L2Mode::Shared;
    // Touch a small set twice: second pass hits home banks remotely.
    let accesses: Vec<Access> = (0..64u64)
        .chain(0..64)
        .map(|k| Access {
            vaddr: k * 256,
            write: false,
            gap: 2,
            ref_id: 0,
        })
        .collect();
    let w = TraceWorkload::single("t", vec![ThreadTrace::new(NodeId(0), accesses)]);
    let stats = Simulator::new(cfg, mapping, PagePolicy::Interleaved).run(&w);
    assert!(stats.l2_hits > 0, "second pass must hit the shared L2");
    assert!(stats.net.on_chip.messages > 0);
}

#[test]
fn optimal_mode_has_flat_memory_latency() {
    let (mut cfg, mapping) = small();
    cfg.optimal = true;
    let w = TraceWorkload::single("t", vec![stream(3, 512, 256, 1)]);
    let stats = Simulator::new(cfg.clone(), mapping, PagePolicy::Interleaved).run(&w);
    let expected = (cfg.mc.timing.row_hit_cycles + cfg.mc.timing.burst_cycles) as f64;
    assert!(
        (stats.memory_latency() - expected).abs() < 1e-9,
        "ideal memory must serve at fixed latency: {} vs {}",
        stats.memory_latency(),
        expected
    );
}

#[test]
fn writes_and_reads_share_the_same_path() {
    let (cfg, mapping) = small();
    let reads = TraceWorkload::single("r", vec![stream(0, 128, 256, 2)]);
    let writes = TraceWorkload::single(
        "w",
        vec![ThreadTrace::new(
            NodeId(0),
            (0..128u64)
                .map(|k| Access {
                    vaddr: k * 256,
                    write: true,
                    gap: 2,
                    ref_id: 0,
                })
                .collect(),
        )],
    );
    let sr = Simulator::new(cfg.clone(), mapping.clone(), PagePolicy::Interleaved).run(&reads);
    let sw = Simulator::new(cfg, mapping, PagePolicy::Interleaved).run(&writes);
    // Write-allocate: identical traffic shape either way.
    assert_eq!(sr.offchip_accesses, sw.offchip_accesses);
    assert_eq!(sr.exec_cycles, sw.exec_cycles);
}

#[test]
fn eviction_notices_appear_as_onchip_control_traffic() {
    // Stream far beyond L2 capacity: evictions must notify the directory,
    // generating on-chip messages even with zero sharing.
    let (cfg, mapping) = small();
    let w = TraceWorkload::single("t", vec![stream(6, 4096, 256, 1)]);
    let stats = Simulator::new(cfg, mapping, PagePolicy::Interleaved).run(&w);
    assert!(
        stats.net.on_chip.messages > 1000,
        "expected eviction notices, got {} on-chip messages",
        stats.net.on_chip.messages
    );
}

#[test]
fn mc_local_addressing_spreads_banks_under_page_policy() {
    // Frames striped across MCs must still use all banks within one MC
    // (the row/bank index is computed on the controller-local address).
    let (mut cfg, mapping) = small();
    cfg.granularity = Granularity::Page;
    cfg.mlp = 4;
    // One thread streaming pages that all land on its nearest MC via
    // first-touch.
    let w = TraceWorkload::single(
        "t",
        vec![ThreadTrace::new(
            NodeId(0),
            (0..512u64)
                .map(|k| Access {
                    vaddr: k * 4096,
                    write: false,
                    gap: 0,
                    ref_id: 0,
                })
                .collect(),
        )],
    );
    let stats = Simulator::new(cfg, mapping, PagePolicy::FirstTouch).run(&w);
    // With bank aliasing (the bug this guards against), 512 concurrent-ish
    // row misses pile onto 2 banks and the queue integral explodes.
    let mc0 = &stats.mc[0];
    assert!(mc0.served > 0);
    assert!(
        mc0.avg_queue_latency() < 1000.0,
        "bank aliasing suspected: avg queue {}",
        mc0.avg_queue_latency()
    );
}

#[test]
fn writebacks_add_offchip_traffic_without_blocking() {
    let (mut cfg, mapping) = small();
    cfg.writebacks = true;
    // Write-stream far past L2 capacity: dirty evictions must flow out.
    let w = TraceWorkload::single(
        "t",
        vec![ThreadTrace::new(
            NodeId(0),
            (0..2048u64)
                .map(|k| Access {
                    vaddr: k * 256,
                    write: true,
                    gap: 1,
                    ref_id: 0,
                })
                .collect(),
        )],
    );
    let with = Simulator::new(cfg.clone(), mapping.clone(), PagePolicy::Interleaved).run(&w);
    cfg.writebacks = false;
    let without = Simulator::new(cfg, mapping, PagePolicy::Interleaved).run(&w);
    assert!(
        with.writebacks > 500,
        "expected many writebacks, got {}",
        with.writebacks
    );
    assert_eq!(without.writebacks, 0);
    // Demand-path accounting unchanged.
    assert_eq!(with.offchip_accesses, without.offchip_accesses);
    // Writebacks consume MC service.
    let served_with: u64 = with.mc.iter().map(|m| m.served).sum();
    let served_without: u64 = without.mc.iter().map(|m| m.served).sum();
    assert_eq!(served_with, served_without + with.writebacks);
}
