//! Simulator configuration (Table 1 of the paper).

use hoploc_cache::CacheConfig;
use hoploc_fault::FaultPlan;
use hoploc_layout::{Granularity, L2Mode};
use hoploc_mem::McConfig;
use hoploc_noc::{McPlacement, Mesh, NocConfig};
use hoploc_prefetch::PrefetchConfig;

/// Full-system configuration. `Default` reproduces Table 1: an 8×8 mesh of
/// two-issue in-order cores, 16 KB L1s (64 B lines), 256 KB L2s (256 B
/// lines), L1/L2/hop latencies of 2/10/4 cycles, 16 B links with 2-cycle
/// routers, XY routing, four corner MCs with FR-FCFS over 4 banks and 4 KB
/// row buffers, and 4 KB pages.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Mesh dimensions.
    pub mesh: Mesh,
    /// Where the memory controllers attach.
    pub placement: McPlacement,
    /// L1 geometry (per node).
    pub l1: CacheConfig,
    /// L2 geometry (per node: a private cache or one shared-SNUCA bank).
    pub l2: CacheConfig,
    /// L1 access latency in cycles.
    pub l1_latency: u64,
    /// L2 access latency in cycles.
    pub l2_latency: u64,
    /// Interconnect timing.
    pub noc: NocConfig,
    /// Per-controller memory configuration.
    pub mc: McConfig,
    /// Last-level cache organization.
    pub l2_mode: L2Mode,
    /// Physical-address interleaving granularity across MCs.
    pub granularity: Granularity,
    /// OS page size in bytes.
    pub page_bytes: u64,
    /// Control-message payload in bytes.
    pub control_bytes: u32,
    /// When `true`, run the §2 *optimal scheme*: every off-chip request is
    /// redirected to the requester's nearest MC and served at a fixed
    /// row-hit latency with no bank contention.
    pub optimal: bool,
    /// Outstanding L1 misses a thread may overlap (MSHRs / memory-level
    /// parallelism of the two-issue cores). `1` models fully blocking
    /// loads; memory-parallel applications such as fma3d and minighost
    /// sustain more (§6.2).
    pub mlp: u32,
    /// Model dirty-line writebacks from the L2s to memory (extra off-chip
    /// traffic; off by default to match the calibrated figures, enabled by
    /// the writeback ablation).
    pub writebacks: bool,
    /// Physical memory capacity in bytes (bounds the per-MC frame pools of
    /// the page allocator).
    pub memory_bytes: u64,
    /// Deterministic fault plan to inject (link latency windows, DRAM bank
    /// stalls/transient errors with bounded retry, whole-MC outages with
    /// re-homing). `None` — and equally `Some(FaultPlan::none())` — leaves
    /// every timing path bit-identical to a fault-free build.
    pub faults: Option<FaultPlan>,
    /// Per-L2-slice hardware prefetching. The default
    /// (`PrefetchMode::Off`) leaves every timing path — and every stats
    /// and trace artifact — bit-identical to a build without the
    /// subsystem.
    pub prefetch: PrefetchConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            mesh: Mesh::new(8, 8),
            placement: McPlacement::Corners,
            l1: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            l1_latency: 2,
            l2_latency: 10,
            noc: NocConfig::default(),
            mc: McConfig::default(),
            l2_mode: L2Mode::Private,
            granularity: Granularity::Page,
            page_bytes: 4096,
            control_bytes: 8,
            optimal: false,
            mlp: 1,
            writebacks: false,
            memory_bytes: 4 << 30,
            faults: None,
            prefetch: PrefetchConfig::default(),
        }
    }
}

impl SimConfig {
    /// The capacity-scaled configuration the figure harnesses use: Table 1
    /// structure and latencies with per-node caches shrunk 8× (L1 4 KB,
    /// L2 32 KB), matching workload inputs shrunk from the paper's
    /// 124 MB–1.9 GB so that the input-to-cache ratio — which determines
    /// the off-chip access behaviour the paper studies — is preserved at
    /// tractable simulation cost.
    pub fn scaled() -> Self {
        Self {
            l1: CacheConfig::l1_scaled(),
            l2: CacheConfig::l2_scaled(),
            ..Self::default()
        }
    }

    /// Number of cores/nodes.
    pub fn num_nodes(&self) -> usize {
        self.mesh.num_nodes()
    }

    /// Number of memory controllers.
    pub fn num_mcs(&self) -> usize {
        self.placement.mc_count()
    }

    /// The interleave unit implied by the granularity: the L2 line size for
    /// cache-line interleaving, the page size for page interleaving.
    pub fn interleave_bytes(&self) -> u64 {
        match self.granularity {
            Granularity::CacheLine => self.l2.line_bytes,
            Granularity::Page => self.page_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SimConfig::default();
        assert_eq!(c.num_nodes(), 64);
        assert_eq!(c.num_mcs(), 4);
        assert_eq!(c.l1.size_bytes, 16 * 1024);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l1_latency, 2);
        assert_eq!(c.l2_latency, 10);
        assert_eq!(c.noc.hop_cycles, 4);
        assert_eq!(c.page_bytes, 4096);
        // 8 independent banks per controller (see hoploc-mem docs).
        assert_eq!(c.mc.banks, 8);
    }

    #[test]
    fn interleave_unit_follows_granularity() {
        let mut c = SimConfig::default();
        assert_eq!(c.interleave_bytes(), 4096);
        c.granularity = Granularity::CacheLine;
        assert_eq!(c.interleave_bytes(), 256);
    }
}
