//! # hoploc-sim
//!
//! The full-system simulator of the hoploc reproduction: in-order cores
//! replaying memory traces over private or shared (SNUCA) L2s, a
//! contention-modelled mesh NoC, FR-FCFS memory controllers, and an OS
//! page-allocation layer with the paper's interleaved / compiler-desired /
//! first-touch policies.
//!
//! The pipeline is: build a [`TraceWorkload`] (one trace per thread; the
//! `hoploc-workloads` crate generates these from affine programs), pick a
//! [`SimConfig`] (defaults reproduce Table 1) and a
//! [`PagePolicy`], then [`Simulator::run`] it for a [`RunStats`].
//! [`Improvement::between`] compares an optimized run against a baseline,
//! yielding the four reductions every results figure reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod address;
mod config;
mod machine;
mod os;
mod stats;
mod trace;

pub use address::AddressSpace;
pub use config::SimConfig;
pub use hoploc_prefetch::{PrefetchConfig, PrefetchMode, PrefetchSummary};
pub use machine::Simulator;
pub use os::{Os, PagePolicy};
pub use stats::{Improvement, RunStats};
pub use trace::{Access, ThreadTrace, TraceWorkload};
