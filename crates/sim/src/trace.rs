//! Memory-access traces: the interface between workload generation and the
//! simulator.

use hoploc_noc::NodeId;

/// One dynamic memory access of a thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// Virtual byte address.
    pub vaddr: u64,
    /// Whether the access is a store.
    pub write: bool,
    /// Compute cycles the thread spends *before* issuing this access.
    pub gap: u32,
    /// Stable identifier of the static reference (the "PC") that issued
    /// this access — the stride-prefetcher training key. Ignored (and
    /// conventionally 0) when prefetching is off.
    pub ref_id: u32,
}

/// The access stream of one thread, bound to a node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ThreadTrace {
    /// The node (core) this thread runs on.
    pub node: NodeId,
    /// Accesses in program order.
    pub accesses: Vec<Access>,
}

impl ThreadTrace {
    /// Creates a trace.
    pub fn new(node: NodeId, accesses: Vec<Access>) -> Self {
        Self { node, accesses }
    }

    /// Total compute cycles in the trace.
    pub fn compute_cycles(&self) -> u64 {
        self.accesses.iter().map(|a| a.gap as u64).sum()
    }
}

/// A complete workload: one trace per thread (multiple threads may share a
/// node when simulating >1 thread per core), plus an application id used
/// for multiprogrammed statistics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceWorkload {
    /// Display name.
    pub name: String,
    /// Per-thread traces.
    pub threads: Vec<ThreadTrace>,
    /// Application index each thread belongs to (all zero for a single
    /// multithreaded application).
    pub app_of_thread: Vec<usize>,
}

impl TraceWorkload {
    /// Wraps traces of a single application.
    pub fn single(name: impl Into<String>, threads: Vec<ThreadTrace>) -> Self {
        let app_of_thread = vec![0; threads.len()];
        Self {
            name: name.into(),
            threads,
            app_of_thread,
        }
    }

    /// Merges several applications into one multiprogrammed workload.
    /// Thread order (and node bindings) are preserved per application.
    pub fn multiprogram(name: impl Into<String>, apps: Vec<TraceWorkload>) -> Self {
        let mut threads = Vec::new();
        let mut app_of_thread = Vec::new();
        for (i, app) in apps.into_iter().enumerate() {
            app_of_thread.extend(std::iter::repeat_n(i, app.threads.len()));
            threads.extend(app.threads);
        }
        Self {
            name: name.into(),
            threads,
            app_of_thread,
        }
    }

    /// Number of applications in the workload.
    pub fn num_apps(&self) -> usize {
        self.app_of_thread
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Total accesses across all threads.
    pub fn total_accesses(&self) -> u64 {
        self.threads.iter().map(|t| t.accesses.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(node: u16, n: usize) -> ThreadTrace {
        ThreadTrace::new(
            NodeId(node),
            (0..n)
                .map(|k| Access {
                    vaddr: k as u64 * 64,
                    write: false,
                    gap: 1,
                    ref_id: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn single_app_has_one_app() {
        let w = TraceWorkload::single("a", vec![t(0, 3), t(1, 2)]);
        assert_eq!(w.num_apps(), 1);
        assert_eq!(w.total_accesses(), 5);
    }

    #[test]
    fn multiprogram_tags_threads() {
        let a = TraceWorkload::single("a", vec![t(0, 1)]);
        let b = TraceWorkload::single("b", vec![t(1, 1), t(2, 1)]);
        let m = TraceWorkload::multiprogram("a+b", vec![a, b]);
        assert_eq!(m.num_apps(), 2);
        assert_eq!(m.app_of_thread, vec![0, 1, 1]);
    }

    #[test]
    fn compute_cycles_sum_gaps() {
        assert_eq!(t(0, 4).compute_cycles(), 4);
    }
}
