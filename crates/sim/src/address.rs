//! Virtual address-space construction from a program layout.
//!
//! Arrays are placed sequentially in the virtual address space, each base
//! aligned per the layout's padding requirement (§5.3: "we also employ
//! padding to keep the base addresses of arrays aligned to the desired
//! memory controller"). The resulting [`AddressSpace`] converts
//! `(array, data vector)` pairs into virtual byte addresses and exports the
//! desired-MC-per-page map consumed by the OS-assisted page allocator.

use hoploc_affine::{ArrayId, Program};
use hoploc_layout::ProgramLayout;
use hoploc_noc::McId;
use std::collections::HashMap;

/// The virtual placement of a program's arrays under a chosen layout.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    bases: Vec<u64>,
    elem_sizes: Vec<u64>,
    total_bytes: u64,
}

impl AddressSpace {
    /// Lays out every array of the program, starting at `origin`.
    ///
    /// Distinct applications in a multiprogrammed run pass distinct origins
    /// so their address spaces do not collide.
    pub fn build(program: &Program, layout: &ProgramLayout, origin: u64) -> Self {
        let mut bases = Vec::with_capacity(program.arrays().len());
        let mut elem_sizes = Vec::with_capacity(program.arrays().len());
        let mut cursor = origin;
        for (i, decl) in program.arrays().iter().enumerate() {
            let l = layout.layout(ArrayId(i));
            let align = l.base_alignment_bytes().max(decl.elem_size() as i64) as u64;
            cursor = cursor.div_ceil(align) * align;
            bases.push(cursor);
            elem_sizes.push(decl.elem_size() as u64);
            cursor += l.span_bytes() as u64;
        }
        Self {
            bases,
            elem_sizes,
            total_bytes: cursor - origin,
        }
    }

    /// Virtual byte address of a data element under the layout.
    ///
    /// # Panics
    ///
    /// Panics if the array id is stale.
    pub fn addr_of(&self, layout: &ProgramLayout, array: ArrayId, dvec: &[i64]) -> u64 {
        let off = layout.layout(array).place(dvec);
        self.bases[array.0] + off as u64 * self.elem_sizes[array.0]
    }

    /// Base address of an array.
    pub fn base(&self, array: ArrayId) -> u64 {
        self.bases[array.0]
    }

    /// Total footprint in bytes (including padding and alignment).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Builds the desired-MC map for page-interleaved runs: virtual page
    /// number → the controller the layout wants that page on. Pages of
    /// unoptimized arrays have no preference and are absent.
    pub fn desired_page_mcs(
        &self,
        program: &Program,
        layout: &ProgramLayout,
        page_bytes: u64,
    ) -> HashMap<u64, McId> {
        let mut map = HashMap::new();
        for (i, _) in program.arrays().iter().enumerate() {
            let array = ArrayId(i);
            let l = layout.layout(array);
            let unit_elems = l.unit_elems();
            if unit_elems == 0 {
                continue;
            }
            let unit_bytes = unit_elems as u64 * self.elem_sizes[i];
            if unit_bytes != page_bytes {
                // The layout was built at a different granularity; derive
                // page preferences only when units are whole pages.
                continue;
            }
            let base = self.bases[i];
            debug_assert_eq!(base % page_bytes, 0, "page-unit layouts are page-aligned");
            let units = l.span_bytes() as u64 / unit_bytes;
            for u in 0..units {
                if let Some(mc) = l.desired_unit_mc(u as i64) {
                    map.insert((base + u * unit_bytes) / page_bytes, mc);
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_affine::{AffineAccess, ArrayDecl, ArrayRef, Loop, LoopNest, Statement};
    use hoploc_layout::{baseline_layout, optimize_program, Granularity, PassConfig};
    use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh};

    fn program() -> Program {
        let mut p = Program::new("t");
        let x = p.add_array(ArrayDecl::new("X", vec![256, 64], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![256, 64], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 256), Loop::constant(0, 64)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::read(x, AffineAccess::identity(2)),
                    ArrayRef::write(y, AffineAccess::identity(2)),
                ],
                1,
            )],
            1,
        ));
        p
    }

    fn mapping() -> L2ToMcMapping {
        L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners)
    }

    #[test]
    fn arrays_do_not_overlap() {
        let p = program();
        let layout = optimize_program(&p, &mapping(), PassConfig::default());
        let space = AddressSpace::build(&p, &layout, 0);
        let x_end = space.base(ArrayId(0)) + layout.layout(ArrayId(0)).span_bytes() as u64;
        assert!(space.base(ArrayId(1)) >= x_end);
    }

    #[test]
    fn bases_are_supergroup_aligned() {
        let p = program();
        let layout = optimize_program(&p, &mapping(), PassConfig::default());
        let space = AddressSpace::build(&p, &layout, 12345);
        for i in 0..2 {
            let align = layout.layout(ArrayId(i)).base_alignment_bytes() as u64;
            assert_eq!(space.base(ArrayId(i)) % align, 0);
        }
    }

    #[test]
    fn addr_of_distinct_elements_distinct() {
        let p = program();
        let layout = baseline_layout(&p, 64);
        let space = AddressSpace::build(&p, &layout, 0);
        let a = space.addr_of(&layout, ArrayId(0), &[0, 0]);
        let b = space.addr_of(&layout, ArrayId(0), &[0, 1]);
        assert_eq!(b - a, 8);
    }

    #[test]
    fn page_granularity_exports_desired_mcs() {
        let p = program();
        let cfg = PassConfig {
            granularity: Granularity::Page,
            ..PassConfig::default()
        };
        let layout = optimize_program(&p, &mapping(), cfg);
        let space = AddressSpace::build(&p, &layout, 0);
        let map = space.desired_page_mcs(&p, &layout, 4096);
        assert!(!map.is_empty());
        // Every optimized page's desired MC is one of the four.
        for mc in map.values() {
            assert!(mc.0 < 4);
        }
    }

    #[test]
    fn cacheline_granularity_exports_no_page_map() {
        let p = program();
        let layout = optimize_program(&p, &mapping(), PassConfig::default());
        let space = AddressSpace::build(&p, &layout, 0);
        assert!(space.desired_page_mcs(&p, &layout, 4096).is_empty());
    }
}
