//! The OS page-allocation layer (§5.3, *Page Interleaving*; §6.3).
//!
//! Under page interleaving the MC-selection bits sit above the page offset,
//! so the OS decides each page's controller at allocation time. Physical
//! frames are organized in per-MC pools; `pfn % N'` identifies the frame's
//! controller. Three policies are modelled:
//!
//! * [`PagePolicy::Interleaved`] — the hardware/OS default: pages rotate
//!   across controllers in allocation order;
//! * [`PagePolicy::Desired`] — the paper's modified policy: each virtual
//!   page is placed on the controller the compiler requested, falling back
//!   to an alternate controller when that pool is exhausted ("our approach
//!   does not increase the number of page faults");
//! * [`PagePolicy::FirstTouch`] — the §6.3 baseline: a page is allocated
//!   from MC *x* if its first access comes from a node in cluster *x*.

use hoploc_noc::{L2ToMcMapping, McId, NodeId};
use std::collections::HashMap;

/// Page-placement policy.
#[derive(Clone, Debug)]
pub enum PagePolicy {
    /// Round-robin page interleaving across controllers.
    Interleaved,
    /// Compiler-desired placement: virtual page number → controller.
    /// Pages absent from the map fall back to interleaving.
    Desired(HashMap<u64, McId>),
    /// First-touch: the first toucher's cluster controller owns the page
    /// (round-robin among the cluster's controllers when it has several).
    FirstTouch,
}

/// The page table plus physical frame allocator.
#[derive(Clone, Debug)]
pub struct Os {
    page_bytes: u64,
    num_mcs: usize,
    frames_per_mc: u64,
    policy: PagePolicy,
    page_table: HashMap<u64, u64>,
    next_frame: Vec<u64>,
    next_rr_mc: usize,
    first_touch_rr: Vec<usize>,
    /// Pages that could not be placed on their preferred controller.
    pub fallback_allocations: u64,
}

impl Os {
    /// Creates the OS layer.
    ///
    /// # Panics
    ///
    /// Panics if sizes are zero.
    pub fn new(page_bytes: u64, memory_bytes: u64, num_mcs: usize, policy: PagePolicy) -> Self {
        assert!(page_bytes > 0 && memory_bytes >= page_bytes && num_mcs > 0);
        Self {
            page_bytes,
            num_mcs,
            frames_per_mc: memory_bytes / page_bytes / num_mcs as u64,
            policy,
            page_table: HashMap::new(),
            next_frame: vec![0; num_mcs],
            next_rr_mc: 0,
            first_touch_rr: vec![0; num_mcs],
            fallback_allocations: 0,
        }
    }

    /// Translates a virtual address, allocating the page on first touch.
    /// `toucher` is the requesting node (used by first-touch placement).
    pub fn translate(&mut self, vaddr: u64, toucher: NodeId, mapping: &L2ToMcMapping) -> u64 {
        let vpn = vaddr / self.page_bytes;
        let offset = vaddr % self.page_bytes;
        let pfn = match self.page_table.get(&vpn) {
            Some(&pfn) => pfn,
            None => {
                let pfn = self.allocate(vpn, toucher, mapping);
                self.page_table.insert(vpn, pfn);
                pfn
            }
        };
        pfn * self.page_bytes + offset
    }

    /// The controller owning a physical address under page interleaving.
    pub fn mc_of_paddr(&self, paddr: u64) -> McId {
        McId(((paddr / self.page_bytes) % self.num_mcs as u64) as u16)
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.page_table.len()
    }

    fn allocate(&mut self, vpn: u64, toucher: NodeId, mapping: &L2ToMcMapping) -> u64 {
        let preferred = match &self.policy {
            PagePolicy::Interleaved => {
                let mc = self.next_rr_mc;
                self.next_rr_mc = (self.next_rr_mc + 1) % self.num_mcs;
                McId(mc as u16)
            }
            PagePolicy::Desired(map) => match map.get(&vpn) {
                Some(&mc) => mc,
                None => {
                    let mc = self.next_rr_mc;
                    self.next_rr_mc = (self.next_rr_mc + 1) % self.num_mcs;
                    McId(mc as u16)
                }
            },
            PagePolicy::FirstTouch => {
                let cluster = mapping.cluster_of(toucher);
                let mcs = mapping.cluster_mcs(cluster);
                let r = &mut self.first_touch_rr[cluster.0 as usize % self.num_mcs];
                let mc = mcs[*r % mcs.len()];
                *r += 1;
                mc
            }
        };
        // Try the preferred pool, then the others ("if the memory space
        // attached to the specified MC is full, an alternate MC is
        // selected").
        for round in 0..self.num_mcs {
            let mc = (preferred.0 as usize + round) % self.num_mcs;
            if self.next_frame[mc] < self.frames_per_mc {
                let idx = self.next_frame[mc];
                self.next_frame[mc] += 1;
                if round > 0 {
                    self.fallback_allocations += 1;
                }
                // Frame pools are striped: pfn % N' == mc.
                return idx * self.num_mcs as u64 + mc as u64;
            }
        }
        panic!(
            "physical memory exhausted: {} pages resident",
            self.page_table.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_noc::{McPlacement, Mesh};

    fn mapping() -> L2ToMcMapping {
        L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners)
    }

    #[test]
    fn translation_is_stable() {
        let mut os = Os::new(4096, 1 << 20, 4, PagePolicy::Interleaved);
        let m = mapping();
        let a = os.translate(0x1234, NodeId(0), &m);
        let b = os.translate(0x1234, NodeId(9), &m);
        assert_eq!(a, b, "repeated translation must be identical");
        assert_eq!(a % 4096, 0x234);
    }

    #[test]
    fn interleaved_rotates_mcs() {
        let mut os = Os::new(4096, 1 << 20, 4, PagePolicy::Interleaved);
        let m = mapping();
        let mcs: Vec<u16> = (0..4u64)
            .map(|p| {
                let paddr = os.translate(p * 4096, NodeId(0), &m);
                os.mc_of_paddr(paddr).0
            })
            .collect();
        let mut sorted = mcs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn desired_policy_honors_map() {
        let mut map = HashMap::new();
        map.insert(0u64, McId(3));
        map.insert(1u64, McId(1));
        let mut os = Os::new(4096, 1 << 20, 4, PagePolicy::Desired(map));
        let m = mapping();
        let p0 = os.translate(0, NodeId(0), &m);
        assert_eq!(os.mc_of_paddr(p0), McId(3));
        let p1 = os.translate(4096, NodeId(0), &m);
        assert_eq!(os.mc_of_paddr(p1), McId(1));
        assert_eq!(os.fallback_allocations, 0);
    }

    #[test]
    fn desired_policy_falls_back_when_full() {
        // 4 frames total → 1 frame per MC.
        let mut map = HashMap::new();
        for vpn in 0..3u64 {
            map.insert(vpn, McId(0));
        }
        let mut os = Os::new(4096, 4 * 4096, 4, PagePolicy::Desired(map));
        let m = mapping();
        os.translate(0, NodeId(0), &m);
        os.translate(4096, NodeId(0), &m);
        os.translate(2 * 4096, NodeId(0), &m);
        assert_eq!(os.fallback_allocations, 2, "MC0 pool holds one frame only");
        assert_eq!(os.resident_pages(), 3);
    }

    #[test]
    fn first_touch_uses_toucher_cluster() {
        let mut os = Os::new(4096, 1 << 20, 4, PagePolicy::FirstTouch);
        let m = mapping();
        // Node 0 is in the top-left cluster, whose MC is MC0 (node 0).
        let p0 = os.translate(0, NodeId(0), &m);
        let mc = os.mc_of_paddr(p0);
        assert_eq!(mc, m.cluster_mcs(m.cluster_of(NodeId(0)))[0]);
        // Node 63 (bottom-right) gets its own corner's controller.
        let p8 = os.translate(8 * 4096, NodeId(63), &m);
        let mc2 = os.mc_of_paddr(p8);
        assert_eq!(mc2, m.cluster_mcs(m.cluster_of(NodeId(63)))[0]);
    }

    #[test]
    #[should_panic(expected = "physical memory exhausted")]
    fn oom_panics() {
        let mut os = Os::new(4096, 4096, 1, PagePolicy::Interleaved);
        let m = mapping();
        os.translate(0, NodeId(0), &m);
        os.translate(4096, NodeId(0), &m);
    }

    #[test]
    fn fallback_walk_wraps_across_all_pools() {
        // 1 frame per MC, every page desires MC2: the walk must visit
        // MC2 → MC3 → MC0 → MC1 in order before giving up.
        let mut map = HashMap::new();
        for vpn in 0..4u64 {
            map.insert(vpn, McId(2));
        }
        let mut os = Os::new(4096, 4 * 4096, 4, PagePolicy::Desired(map));
        let m = mapping();
        let owners: Vec<u16> = (0..4u64)
            .map(|p| {
                let paddr = os.translate(p * 4096, NodeId(0), &m);
                os.mc_of_paddr(paddr).0
            })
            .collect();
        assert_eq!(owners, vec![2, 3, 0, 1]);
        assert_eq!(os.fallback_allocations, 3);
        assert_eq!(os.resident_pages(), 4);
    }

    #[test]
    #[should_panic(expected = "physical memory exhausted")]
    fn fallback_walk_exhaustion_still_panics() {
        let mut map = HashMap::new();
        for vpn in 0..5u64 {
            map.insert(vpn, McId(2));
        }
        let mut os = Os::new(4096, 4 * 4096, 4, PagePolicy::Desired(map));
        let m = mapping();
        for p in 0..5u64 {
            os.translate(p * 4096, NodeId(0), &m);
        }
    }

    #[test]
    fn first_touch_shared_page_is_stable() {
        // The first toucher's cluster owns the page; a later toucher from
        // the opposite corner must neither move it nor re-allocate it.
        let mut os = Os::new(4096, 1 << 20, 4, PagePolicy::FirstTouch);
        let m = mapping();
        let first = os.translate(100, NodeId(0), &m);
        let again = os.translate(100, NodeId(63), &m);
        assert_eq!(first, again, "shared page must not move on second touch");
        assert_eq!(os.resident_pages(), 1);
        assert_eq!(
            os.mc_of_paddr(first),
            m.cluster_mcs(m.cluster_of(NodeId(0)))[0],
            "ownership follows the FIRST toucher"
        );
    }

    #[test]
    fn first_touch_falls_back_when_cluster_pool_is_full() {
        // 1 frame per MC: node 0's second page cannot stay in its cluster.
        let mut os = Os::new(4096, 4 * 4096, 4, PagePolicy::FirstTouch);
        let m = mapping();
        let home = m.cluster_mcs(m.cluster_of(NodeId(0)))[0];
        let p0 = os.translate(0, NodeId(0), &m);
        assert_eq!(os.mc_of_paddr(p0), home);
        let p1 = os.translate(4096, NodeId(0), &m);
        assert_ne!(os.mc_of_paddr(p1), home, "full pool must spill elsewhere");
        assert_eq!(os.fallback_allocations, 1);
        // Both translations stay stable afterwards.
        assert_eq!(os.translate(0, NodeId(63), &m), p0);
        assert_eq!(os.translate(4096, NodeId(63), &m), p1);
    }
}
