//! Run statistics: every metric the paper's figures are built from.

use hoploc_mem::McStats;
use hoploc_noc::NetStats;
use hoploc_prefetch::PrefetchSummary;

/// Statistics of one simulation run.
///
/// `PartialEq` compares every field bit-for-bit (including the `f64` link
/// utilizations): two runs compare equal only when they are observably
/// identical, which is what the harness's sequential-vs-parallel
/// determinism guarantee is stated in terms of.
#[derive(Clone, PartialEq, Debug)]
pub struct RunStats {
    /// Execution time: the cycle at which the last thread finished.
    pub exec_cycles: u64,
    /// Dynamic data accesses issued (loads + stores).
    pub total_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (local for private, home bank for shared).
    pub l2_hits: u64,
    /// Misses satisfied by another on-chip cache (private-L2 directory
    /// forwarding).
    pub cache_to_cache: u64,
    /// Off-chip (main-memory) accesses.
    pub offchip_accesses: u64,
    /// Dirty-line writebacks issued to memory (0 unless enabled).
    pub writebacks: u64,
    /// Network statistics, split on-chip / off-chip.
    pub net: NetStats,
    /// Per-controller memory statistics.
    pub mc: Vec<McStats>,
    /// `node_mc_requests[node][mc]`: off-chip requests issued from each
    /// node to each controller (Figure 13).
    pub node_mc_requests: Vec<Vec<u64>>,
    /// Finish cycle of each application in the workload (one entry for a
    /// single multithreaded app).
    pub app_finish: Vec<u64>,
    /// Pages the OS could not place on their preferred controller.
    pub os_fallbacks: u64,
    /// Per-directed-link utilization over the run (`node*4 + dir`).
    pub link_utilization: Vec<f64>,
    /// Off-chip requests (and writebacks) re-routed away from a dark
    /// controller to the nearest live one during an MC outage window.
    pub rehomed_requests: u64,
    /// Requests abandoned after exhausting the transient-error retry cap;
    /// the waiting thread resumes on an error reply.
    pub dropped_requests: u64,
    /// Times the event loop's liveness backstop force-flushed the
    /// controllers (0 in a healthy run — see diagnostic HL0900).
    pub backstop_flushes: u64,
    /// Prefetch-pipeline counters, summed over the L2 slices (all zero —
    /// `PrefetchSummary::default()` — when prefetching is off).
    pub prefetch: PrefetchSummary,
}

impl RunStats {
    /// Fraction of dynamic data accesses that went off-chip (Figure 3).
    pub fn offchip_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.offchip_accesses as f64 / self.total_accesses as f64
        }
    }

    /// Mean network latency of on-chip messages, in cycles.
    pub fn onchip_net_latency(&self) -> f64 {
        self.net.on_chip.avg_latency()
    }

    /// Mean network latency of off-chip messages, in cycles.
    pub fn offchip_net_latency(&self) -> f64 {
        self.net.off_chip.avg_latency()
    }

    /// Mean memory latency (queue + service) per off-chip request, in
    /// cycles ("memory latency includes the time spent in the queue").
    pub fn memory_latency(&self) -> f64 {
        let served: u64 = self.mc.iter().map(|m| m.served).sum();
        if served == 0 {
            return 0.0;
        }
        let total: u64 = self
            .mc
            .iter()
            .map(|m| m.total_queue_cycles + m.total_service_cycles)
            .sum();
        total as f64 / served as f64
    }

    /// Mean bank-queue occupancy across controllers (Figure 18).
    pub fn bank_queue_occupancy(&self) -> f64 {
        if self.mc.is_empty() || self.exec_cycles == 0 {
            return 0.0;
        }
        self.mc
            .iter()
            .map(|m| m.queue_occupancy(self.exec_cycles))
            .sum::<f64>()
            / self.mc.len() as f64
    }

    /// Overall L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.total_accesses as f64
        }
    }

    /// Relative improvement of `self` over a baseline for a
    /// smaller-is-better metric, as a fraction (0.2 = 20% reduction).
    ///
    /// Total: a zero, NaN, or infinite input yields 0.0 rather than
    /// propagating a non-finite ratio into figure tables.
    pub fn reduction(metric_opt: f64, metric_base: f64) -> f64 {
        if metric_base == 0.0 || !metric_base.is_finite() || !metric_opt.is_finite() {
            return 0.0;
        }
        (metric_base - metric_opt) / metric_base
    }

    /// The most-utilized directed link, as `(node index, direction 0-3
    /// = E/W/N/S, utilization)` — the corner hotspot detector.
    pub fn hottest_link(&self) -> (usize, usize, f64) {
        self.link_utilization
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, &u)| (i / 4, i % 4, u))
            .unwrap_or((0, 0, 0.0))
    }

    /// The share of off-chip requests a given controller received from
    /// each node, normalized to that controller's total (Figure 13's
    /// vertical axis).
    pub fn mc_request_shares(&self, mc: usize) -> Vec<f64> {
        let total: u64 = self.node_mc_requests.iter().map(|row| row[mc]).sum();
        self.node_mc_requests
            .iter()
            .map(|row| {
                if total == 0 {
                    0.0
                } else {
                    row[mc] as f64 / total as f64
                }
            })
            .collect()
    }
}

/// The four headline reductions reported per application in Figures 4, 14,
/// 16, and 22: on-chip network latency, off-chip network latency, memory
/// latency, and execution time — each as optimized-vs-baseline fractions.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Improvement {
    /// Reduction in mean on-chip network latency.
    pub onchip_net: f64,
    /// Reduction in mean off-chip network latency.
    pub offchip_net: f64,
    /// Reduction in mean memory (queue + service) latency.
    pub memory: f64,
    /// Reduction in execution time.
    pub exec_time: f64,
}

impl Improvement {
    /// Compares an optimized run against a baseline run.
    pub fn between(baseline: &RunStats, optimized: &RunStats) -> Self {
        Self {
            onchip_net: RunStats::reduction(
                optimized.onchip_net_latency(),
                baseline.onchip_net_latency(),
            ),
            offchip_net: RunStats::reduction(
                optimized.offchip_net_latency(),
                baseline.offchip_net_latency(),
            ),
            memory: RunStats::reduction(optimized.memory_latency(), baseline.memory_latency()),
            exec_time: RunStats::reduction(
                optimized.exec_cycles as f64,
                baseline.exec_cycles as f64,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty() -> RunStats {
        RunStats {
            exec_cycles: 0,
            total_accesses: 0,
            l1_hits: 0,
            l2_hits: 0,
            cache_to_cache: 0,
            offchip_accesses: 0,
            writebacks: 0,
            net: NetStats::default(),
            mc: Vec::new(),
            node_mc_requests: vec![vec![0; 4]; 4],
            app_finish: Vec::new(),
            os_fallbacks: 0,
            link_utilization: Vec::new(),
            rehomed_requests: 0,
            dropped_requests: 0,
            backstop_flushes: 0,
            prefetch: PrefetchSummary::default(),
        }
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = empty();
        assert_eq!(s.offchip_fraction(), 0.0);
        assert_eq!(s.memory_latency(), 0.0);
        assert_eq!(s.bank_queue_occupancy(), 0.0);
        assert_eq!(s.l1_hit_rate(), 0.0);
        assert_eq!(s.mc_request_shares(0), vec![0.0; 4]);
        assert_eq!(s.hottest_link(), (0, 0, 0.0));
    }

    #[test]
    fn ratio_methods_stay_in_range_on_degenerate_counts() {
        // Accesses recorded but no hits / no off-chip traffic: the ratios
        // must be exact 0.0, and with hits == accesses exactly 1.0.
        let mut s = empty();
        s.total_accesses = 10;
        assert_eq!(s.offchip_fraction(), 0.0);
        assert_eq!(s.l1_hit_rate(), 0.0);
        s.l1_hits = 10;
        s.offchip_accesses = 10;
        assert_eq!(s.offchip_fraction(), 1.0);
        assert_eq!(s.l1_hit_rate(), 1.0);
        // Controllers present but a zero-cycle run must not divide by the
        // elapsed time.
        s.mc = vec![McStats::default(); 2];
        s.exec_cycles = 0;
        assert_eq!(s.bank_queue_occupancy(), 0.0);
    }

    #[test]
    fn reduction_is_relative() {
        assert!((RunStats::reduction(80.0, 100.0) - 0.2).abs() < 1e-12);
        assert_eq!(RunStats::reduction(1.0, 0.0), 0.0);
    }

    #[test]
    fn reduction_is_total_over_non_finite_inputs() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(RunStats::reduction(1.0, bad), 0.0, "base {bad}");
            assert_eq!(RunStats::reduction(bad, 1.0), 0.0, "opt {bad}");
            assert_eq!(RunStats::reduction(bad, bad), 0.0);
        }
        // -0.0 is still a zero denominator.
        assert_eq!(RunStats::reduction(1.0, -0.0), 0.0);
    }

    #[test]
    fn improvement_between_empty_runs_is_all_finite_zeros() {
        let a = empty();
        let b = empty();
        let imp = Improvement::between(&a, &b);
        for (name, v) in [
            ("onchip_net", imp.onchip_net),
            ("offchip_net", imp.offchip_net),
            ("memory", imp.memory),
            ("exec_time", imp.exec_time),
        ] {
            assert!(v.is_finite(), "{name} not finite");
            assert_eq!(v, 0.0, "{name}");
        }
        assert_eq!(imp, Improvement::default());
    }

    #[test]
    fn mc_request_shares_normalize() {
        let mut s = empty();
        s.node_mc_requests = vec![vec![3, 0], vec![1, 0], vec![0, 0]];
        let shares = s.mc_request_shares(0);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[0] - 0.75).abs() < 1e-12);
    }
}
