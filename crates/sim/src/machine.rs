//! The event-driven full-system simulator.
//!
//! Each thread replays its trace in order, blocking on every memory
//! access (in-order cores). Accesses walk the Figure 2 flows:
//!
//! * **Private L2** (Figure 2a): L1 → local L2 → directory at the owning
//!   MC → either a cache-to-cache forward (on-chip) or an FR-FCFS DRAM
//!   access followed by a data response (off-chip).
//! * **Shared L2** (Figure 2b): L1 → home bank (by physical address) →
//!   on a home miss, the MC and back through the home bank.
//!
//! All messages share the contention-modelled mesh, so off-chip traffic
//! delays on-chip traffic exactly as §1 describes. The **optimal scheme**
//! of §2 redirects every off-chip request to the requester's nearest MC
//! and serves it at fixed row-hit latency.

use crate::config::SimConfig;
use crate::os::{Os, PagePolicy};
use crate::stats::RunStats;
use crate::trace::TraceWorkload;
use hoploc_cache::{Directory, SetAssocCache};
use hoploc_fault::{FaultTopo, McOutage};
use hoploc_layout::L2Mode;
use hoploc_mem::{Completion, MemoryController};
use hoploc_noc::{L2ToMcMapping, McId, Network, NodeId, TrafficClass};
use hoploc_obs::{CacheTag, ObsConfig, ObsReport, PfEvent, Phase, ReqTag, Sink, Topology};
use hoploc_prefetch::{DemandOutcome, PrefetchSummary, SlicePrefetcher};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EventKind {
    /// Thread issues its next trace entry.
    Issue { thread: usize },
    /// An overlapped (MSHR-tracked) miss returns to its thread.
    MissReturn { thread: usize },
    /// A memory completion surfaced earlier matures (response departs).
    /// `dropped` marks a request abandoned at the retry cap: an error
    /// reply travels back instead of data.
    MemDone { token: u64, dropped: bool },
    /// Re-run the FR-FCFS scheduler of a controller.
    McPoll { mc: usize },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Copy, Debug)]
struct PendingMem {
    thread: usize,
    /// Node the MC responds to (requester for private, home bank for
    /// shared).
    responder: NodeId,
    /// Shared-L2 only: the requester the home bank forwards to.
    final_dst: Option<NodeId>,
    mc: usize,
    l2_line: u64,
    /// A dirty-eviction writeback: fire-and-forget, no response, no
    /// thread to resume.
    writeback: bool,
    /// A speculative prefetch: installs into the responder slice on
    /// completion, resumes any late-joined demands, and is dropped (never
    /// retried) on a transient error.
    prefetch: bool,
    /// Observability tag of the request this memory access serves
    /// ([`ReqTag::NONE`] for writebacks and untraced runs).
    req: ReqTag,
}

/// A demand miss that found its line already in flight as a prefetch: the
/// thread resumes (and its request span closes) when that prefetch lands.
#[derive(Clone, Copy, Debug)]
struct PfWaiter {
    thread: usize,
    /// Shared-L2 only: the requester the home bank forwards the line to.
    final_dst: Option<NodeId>,
    req: ReqTag,
}

/// Prefetch machinery: one engine per L2 slice plus the in-flight book.
/// Exists only when a prefetch mode is configured, so an Off run carries
/// no state and touches no prefetch code on its hot paths.
struct PfState {
    slices: Vec<SlicePrefetcher>,
    /// `(slice node, l2 line)` → token of the in-flight prefetch, the
    /// late-join rendezvous and the duplicate-issue filter.
    inflight: HashMap<(u16, u64), u64>,
    /// In-flight prefetches per slice (bounds issue at `queue_cap`).
    inflight_count: Vec<u32>,
    /// Demands blocked on an in-flight prefetch, by token.
    waiters: HashMap<u64, Vec<PfWaiter>>,
    summary: PrefetchSummary,
    /// Reusable candidate buffer for [`SlicePrefetcher::on_demand`].
    scratch: Vec<u64>,
}

struct ThreadState {
    node: NodeId,
    cursor: usize,
    /// Misses currently outstanding (bounded by the configured MLP).
    outstanding: u32,
    /// The thread consumed an access but could not continue (MSHRs full).
    blocked: bool,
    finish: u64,
}

/// The simulator. Construct once per run; [`Simulator::run`] consumes a
/// workload and produces [`RunStats`].
pub struct Simulator {
    config: SimConfig,
    mapping: L2ToMcMapping,
    os: Os,
    net: Network,
    mcs: Vec<MemoryController>,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    dir: Directory,
    // Run state.
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    threads: Vec<ThreadState>,
    pending: HashMap<u64, PendingMem>,
    next_token: u64,
    mc_next_poll: Vec<Option<u64>>,
    /// Whole-controller outage windows from the installed fault plan
    /// (empty when no plan: the re-home check short-circuits).
    outages: Vec<McOutage>,
    /// Prefetch state, present only when `config.prefetch` enables a mode.
    pf: Option<PfState>,
    // Stats.
    total_accesses: u64,
    l1_hits: u64,
    l2_hits: u64,
    cache_to_cache: u64,
    offchip: u64,
    writebacks: u64,
    rehomed: u64,
    dropped: u64,
    backstop_flushes: u64,
    node_mc_requests: Vec<Vec<u64>>,
    /// Observability sink: disabled unless [`Simulator::with_obs`] was
    /// called, in which case every component mirrors its events here.
    obs: Sink,
}

impl Simulator {
    /// Builds a simulator.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` disagrees with the configuration's mesh or MC
    /// placement, or if `config.faults` fails [`hoploc_fault::FaultPlan::validate`]
    /// against the configured topology.
    pub fn new(config: SimConfig, mapping: L2ToMcMapping, policy: PagePolicy) -> Self {
        assert_eq!(
            *mapping.mesh(),
            config.mesh,
            "mapping mesh must match config"
        );
        assert_eq!(
            mapping.mc_nodes(),
            config.placement.attach_nodes(&config.mesh).as_slice(),
            "mapping MC placement must match config"
        );
        let n = config.num_nodes();
        let n_mcs = config.num_mcs();
        let mut mc_cfg = config.mc;
        mc_cfg.ideal = config.optimal;
        let mut net = Network::new(config.mesh, config.noc);
        let mut mcs: Vec<MemoryController> =
            (0..n_mcs).map(|_| MemoryController::new(mc_cfg)).collect();
        let mut outages = Vec::new();
        if let Some(plan) = &config.faults {
            let topo = FaultTopo {
                links: (n * 4) as u32,
                mcs: n_mcs as u16,
                banks_per_mc: config.mc.banks as u16,
            };
            if let Err(e) = plan.validate(&topo) {
                panic!("fault plan does not fit the configured machine: {e}");
            }
            net.set_link_faults(&plan.links);
            for (i, mc) in mcs.iter_mut().enumerate() {
                mc.set_faults(plan.mc_faults(i as u16));
            }
            outages = plan.outages.clone();
        }
        Self {
            os: Os::new(config.page_bytes, config.memory_bytes, n_mcs, policy),
            net,
            mcs,
            l1: (0..n).map(|_| SetAssocCache::new(config.l1)).collect(),
            l2: (0..n).map(|_| SetAssocCache::new(config.l2)).collect(),
            dir: Directory::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            threads: Vec::new(),
            pending: HashMap::new(),
            next_token: 0,
            mc_next_poll: vec![None; n_mcs],
            outages,
            pf: config.prefetch.enabled().then(|| PfState {
                slices: (0..n)
                    .map(|_| SlicePrefetcher::new(config.prefetch))
                    .collect(),
                inflight: HashMap::new(),
                inflight_count: vec![0; n],
                waiters: HashMap::new(),
                summary: PrefetchSummary::default(),
                scratch: Vec::new(),
            }),
            total_accesses: 0,
            l1_hits: 0,
            l2_hits: 0,
            cache_to_cache: 0,
            offchip: 0,
            writebacks: 0,
            rehomed: 0,
            dropped: 0,
            backstop_flushes: 0,
            node_mc_requests: vec![vec![0; n_mcs]; n],
            obs: Sink::disabled(),
            config,
            mapping,
        }
    }

    /// Enables observability: the run records request-lifecycle spans and a
    /// metric registry into a fresh recorder, harvested by
    /// [`Simulator::run_traced`]. Recording never changes simulated timing —
    /// [`RunStats`] stay bit-identical to an untraced run.
    pub fn with_obs(mut self, options: ObsConfig) -> Self {
        let topo = Topology {
            mesh_width: self.config.mesh.width() as usize,
            mesh_height: self.config.mesh.height() as usize,
            mcs: self.config.num_mcs(),
            banks_per_mc: self.config.mc.banks,
        };
        self.obs = Sink::recording(topo, options);
        self
    }

    /// Runs a workload to completion and returns the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if a trace references a node outside the mesh.
    pub fn run(mut self, workload: &TraceWorkload) -> RunStats {
        self.run_core(workload)
    }

    /// Like [`run`](Self::run), additionally harvesting the observability
    /// recording enabled by [`with_obs`](Self::with_obs).
    ///
    /// # Panics
    ///
    /// Panics if the simulator was constructed without
    /// [`with_obs`](Self::with_obs), or if a trace references a node outside
    /// the mesh.
    pub fn run_traced(mut self, workload: &TraceWorkload) -> (RunStats, ObsReport) {
        assert!(
            self.obs.is_enabled(),
            "run_traced requires Simulator::with_obs"
        );
        let stats = self.run_core(workload);
        let report = std::mem::take(&mut self.obs)
            .into_report(stats.exec_cycles)
            .expect("invariant: the sink was checked enabled above");
        (stats, report)
    }

    fn run_core(&mut self, workload: &TraceWorkload) -> RunStats {
        for t in &workload.threads {
            assert!(
                (t.node.0 as usize) < self.config.num_nodes(),
                "trace bound to node outside the mesh"
            );
        }
        self.threads = workload
            .threads
            .iter()
            .map(|t| ThreadState {
                node: t.node,
                cursor: 0,
                outstanding: 0,
                blocked: false,
                finish: 0,
            })
            .collect();
        for (i, t) in workload.threads.iter().enumerate() {
            if let Some(first) = t.accesses.first() {
                self.schedule(first.gap as u64, EventKind::Issue { thread: i });
            }
        }

        while let Some(Reverse(ev)) = self.heap.pop() {
            match ev.kind {
                EventKind::Issue { thread } => self.handle_issue(workload, thread, ev.time),
                EventKind::MissReturn { thread } => self.miss_return(workload, thread, ev.time),
                EventKind::MemDone { token, dropped } => {
                    self.handle_mem_done(workload, token, ev.time, dropped)
                }
                EventKind::McPoll { mc } => self.handle_poll(mc, ev.time),
            }
            // Liveness backstop: if the heap drained while requests are
            // still pending (e.g. a poll raced a flush), force scheduling.
            // A healthy run never gets here — firing means a scheduling
            // hole, so make it loud and countable instead of silent.
            if self.heap.is_empty() && !self.pending.is_empty() {
                self.backstop_flushes += 1;
                self.obs.backstop(ev.time, self.pending.len());
                eprintln!(
                    "warning[HL0900]: event heap drained at cycle {} with {} request(s) \
                     still in flight; force-flushing {} controller(s)",
                    ev.time,
                    self.pending.len(),
                    self.mcs.len()
                );
                for mc in 0..self.mcs.len() {
                    let done = self.mcs[mc].flush_obs(mc as u16, &self.obs);
                    self.schedule_completions(&done);
                }
            }
        }
        assert!(
            self.pending.is_empty(),
            "simulation ended with in-flight requests"
        );

        let exec_cycles = self.threads.iter().map(|t| t.finish).max().unwrap_or(0);
        let mut app_finish = vec![0u64; workload.num_apps()];
        for (i, t) in self.threads.iter().enumerate() {
            let app = workload.app_of_thread[i];
            app_finish[app] = app_finish[app].max(t.finish);
        }
        let link_utilization = self.net.link_utilization(exec_cycles.max(1));
        RunStats {
            exec_cycles,
            total_accesses: self.total_accesses,
            l1_hits: self.l1_hits,
            l2_hits: self.l2_hits,
            cache_to_cache: self.cache_to_cache,
            offchip_accesses: self.offchip,
            writebacks: self.writebacks,
            net: self.net.stats().clone(),
            mc: self.mcs.iter().map(|m| *m.stats()).collect(),
            node_mc_requests: std::mem::take(&mut self.node_mc_requests),
            app_finish,
            os_fallbacks: self.os.fallback_allocations,
            link_utilization,
            rehomed_requests: self.rehomed,
            dropped_requests: self.dropped,
            backstop_flushes: self.backstop_flushes,
            prefetch: self.pf.as_ref().map(|p| p.summary).unwrap_or_default(),
        }
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// The controller owning a physical address under the configured
    /// interleaving.
    fn mc_of_paddr(&self, paddr: u64) -> usize {
        ((paddr / self.config.interleave_bytes()) % self.config.num_mcs() as u64) as usize
    }

    fn mc_node(&self, mc: usize) -> NodeId {
        self.mapping.mc_node(McId(mc as u16))
    }

    /// Whether controller `mc` is inside an outage window at `cycle`.
    fn mc_dark(&self, mc: usize, cycle: u64) -> bool {
        self.outages
            .iter()
            .any(|o| o.mc as usize == mc && o.active_at(cycle))
    }

    /// Graceful degradation under MC outages: the controller to actually
    /// route to at `now`. Normally `preferred`; during an outage window the
    /// request re-homes to the live controller nearest `origin` (so a
    /// cluster-local MC is preferred over a remote one, exactly the
    /// locality rule the layouts optimize for). If every controller is
    /// dark the request stays on `preferred` and queues until the window
    /// closes — outages never lose requests.
    fn live_mc(&mut self, preferred: usize, origin: NodeId, now: u64) -> usize {
        if self.outages.is_empty() || !self.mc_dark(preferred, now) {
            return preferred;
        }
        let alive = (0..self.mcs.len())
            .filter(|&m| m != preferred && !self.mc_dark(m, now))
            .min_by_key(|&m| (self.config.mesh.hop_distance(origin, self.mc_node(m)), m));
        match alive {
            Some(m) => {
                self.rehomed += 1;
                self.obs.rehome(now, preferred as u16, m as u16);
                m
            }
            None => preferred,
        }
    }

    /// The controller-local DRAM address: hardware strips the MC-selection
    /// bits before row/bank decoding, so each controller sees a dense
    /// address space. Without this, interleaving-striped frames would
    /// alias onto a fraction of the banks.
    fn mc_local_addr(&self, paddr: u64) -> u64 {
        let unit = self.config.interleave_bytes();
        let n = self.config.num_mcs() as u64;
        (paddr / (unit * n)) * unit + paddr % unit
    }

    fn handle_issue(&mut self, workload: &TraceWorkload, thread: usize, now: u64) {
        let node = self.threads[thread].node;
        let access = workload.threads[thread].accesses[self.threads[thread].cursor];
        self.total_accesses += 1;

        let paddr = self.os.translate(access.vaddr, node, &self.mapping);
        let t1 = now + self.config.l1_latency;
        let l1_line = paddr / self.config.l1.line_bytes;
        self.obs.access(now, node.0);
        if self.l1[node.0 as usize]
            .access_rw_obs(l1_line, access.write, t1, CacheTag::l1(node.0), &self.obs)
            .hit
        {
            self.l1_hits += 1;
            self.after_access(workload, thread, t1, false);
            return;
        }
        // An L1 miss opens a request lifecycle; the span closes when the
        // data returns (or is dropped again on an L2 hit).
        let req = self.obs.begin_req(t1, node.0);
        let l2_line = paddr / self.config.l2.line_bytes;
        match self.config.l2_mode {
            L2Mode::Private => self.private_l2_access(
                workload,
                thread,
                node,
                paddr,
                l2_line,
                t1,
                access.write,
                access.ref_id,
                req,
            ),
            L2Mode::Shared => self.shared_l2_access(
                workload,
                thread,
                node,
                paddr,
                l2_line,
                t1,
                access.write,
                access.ref_id,
                req,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn private_l2_access(
        &mut self,
        workload: &TraceWorkload,
        thread: usize,
        node: NodeId,
        paddr: u64,
        l2_line: u64,
        t1: u64,
        write: bool,
        ref_id: u32,
        req: ReqTag,
    ) {
        let t2 = t1 + self.config.l2_latency;
        let res = self.l2[node.0 as usize].access_rw_obs(
            l2_line,
            write,
            t2,
            CacheTag::l2(node.0),
            &self.obs,
        );
        self.pf_demand_result(node, res.prefetched_hit, res.evicted_prefetched);
        if res.hit {
            self.l2_hits += 1;
            self.obs.req_l2_hit(req, t2);
            // A hit on a prefetched line trains as "would have been
            // off-chip" so the predictor stays gated-open under the
            // prefetcher's own success.
            let outcome = if res.prefetched_hit {
                DemandOutcome::PrefetchedHit
            } else {
                DemandOutcome::L2Hit
            };
            self.pf_on_demand(node, ref_id, l2_line, outcome, t2);
            self.after_access(workload, thread, t2, false);
            return;
        }
        // The replaced line leaves this L2: tell its directory slice
        // (fire-and-forget control message).
        if let Some(evicted) = res.evicted {
            self.dir.remove_sharer(evicted, node.0 as usize);
            let ev_mc = self.mc_of_paddr(evicted * self.config.l2.line_bytes);
            if self.config.writebacks && res.evicted_dirty {
                // Dirty line travels to memory: a data message plus a DRAM
                // write, neither of which blocks the thread. An outage
                // re-homes the write; the directory slice stays put.
                let ev_mc = self.live_mc(ev_mc, node, t2);
                let dst = self.mc_node(ev_mc);
                self.writebacks += 1;
                self.obs.writeback(t2, node.0, ev_mc as u16);
                let at = self.net.send_obs(
                    node,
                    dst,
                    self.config.l2.line_bytes as u32,
                    TrafficClass::OffChip,
                    t2,
                    ReqTag::NONE,
                    &self.obs,
                );
                self.enqueue_mem(
                    evicted * self.config.l2.line_bytes,
                    at,
                    PendingMem {
                        thread: usize::MAX,
                        responder: dst,
                        final_dst: None,
                        mc: ev_mc,
                        l2_line: evicted,
                        writeback: true,
                        prefetch: false,
                        req: ReqTag::NONE,
                    },
                );
            } else {
                let dst = self.mc_node(ev_mc);
                self.net.send_obs(
                    node,
                    dst,
                    self.config.control_bytes,
                    TrafficClass::OnChip,
                    t2,
                    ReqTag::NONE,
                    &self.obs,
                );
            }
        }

        // A prefetch for this very line is already in flight to this
        // slice: join it instead of issuing a second memory request (the
        // demand's `access_rw` just allocated the line, so the landing
        // prefetch installs as a no-op). Counted as a *late* prefetch —
        // the engine was right but not early enough.
        if let Some(token) = self.pf_late_join(node, l2_line) {
            let pf = self.pf.as_mut().expect("late join without prefetch state");
            pf.waiters.entry(token).or_default().push(PfWaiter {
                thread,
                final_dst: None,
                req,
            });
            self.pf_on_demand(node, ref_id, l2_line, DemandOutcome::PrefetchedHit, t2);
            self.after_access(workload, thread, t2, true);
            return;
        }

        let mc = if self.config.optimal {
            self.mapping.nearest_mc(node).0 as usize
        } else {
            self.mc_of_paddr(paddr)
        };
        let mc = self.live_mc(mc, node, t2);
        let mc_node = self.mc_node(mc);
        let sharers = self.dir.lookup_obs(l2_line, node.0 as usize, t2, &self.obs);
        if let Some(&owner) = sharers
            .iter()
            .min_by_key(|&&s| self.config.mesh.hop_distance(node, NodeId(s as u16)))
        {
            // On-chip fulfilment: requester → directory → owner → requester.
            self.cache_to_cache += 1;
            self.obs.c2c(req, t2, node.0);
            let owner = NodeId(owner as u16);
            let t3 = self.net.send_obs(
                node,
                mc_node,
                self.config.control_bytes,
                TrafficClass::OnChip,
                t2,
                req,
                &self.obs,
            );
            let t4 = self.net.send_obs(
                mc_node,
                owner,
                self.config.control_bytes,
                TrafficClass::OnChip,
                t3,
                req.phase(Phase::Forward),
                &self.obs,
            );
            let t5 = t4 + self.config.l2_latency;
            let t6 = self.net.send_obs(
                owner,
                node,
                self.config.l2.line_bytes as u32,
                TrafficClass::OnChip,
                t5,
                req.phase(Phase::Reply),
                &self.obs,
            );
            self.dir.add_sharer(l2_line, node.0 as usize);
            self.obs.retire(req, t6);
            self.schedule(t6, EventKind::MissReturn { thread });
            self.pf_on_demand(node, ref_id, l2_line, DemandOutcome::OnChip, t2);
            self.after_access(workload, thread, t2, true);
        } else {
            // Off-chip: requester → MC (request), DRAM, MC → requester (data).
            self.offchip += 1;
            self.node_mc_requests[node.0 as usize][mc] += 1;
            self.obs.offchip(req, t2, node.0, mc as u16);
            let t3 = self.net.send_obs(
                node,
                mc_node,
                self.config.control_bytes,
                TrafficClass::OffChip,
                t2,
                req,
                &self.obs,
            );
            self.enqueue_mem(
                paddr,
                t3,
                PendingMem {
                    thread,
                    responder: node,
                    final_dst: None,
                    mc,
                    l2_line,
                    writeback: false,
                    prefetch: false,
                    req,
                },
            );
            self.pf_on_demand(node, ref_id, l2_line, DemandOutcome::OffChip, t2);
            self.after_access(workload, thread, t2, true);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn shared_l2_access(
        &mut self,
        workload: &TraceWorkload,
        thread: usize,
        node: NodeId,
        paddr: u64,
        l2_line: u64,
        t1: u64,
        write: bool,
        ref_id: u32,
        req: ReqTag,
    ) {
        let home = NodeId((l2_line % self.config.num_nodes() as u64) as u16);
        let t2 = self.net.send_obs(
            node,
            home,
            self.config.control_bytes,
            TrafficClass::OnChip,
            t1,
            req,
            &self.obs,
        );
        let t3 = t2 + self.config.l2_latency;
        let res = self.l2[home.0 as usize].access_rw_obs(
            l2_line,
            write,
            t3,
            CacheTag::l2(home.0),
            &self.obs,
        );
        self.pf_demand_result(home, res.prefetched_hit, res.evicted_prefetched);
        if self.config.writebacks && res.evicted_dirty {
            if let Some(evicted) = res.evicted {
                self.writebacks += 1;
                let ev_mc = self.mc_of_paddr(evicted * self.config.l2.line_bytes);
                let ev_mc = self.live_mc(ev_mc, home, t3);
                let dst = self.mc_node(ev_mc);
                self.obs.writeback(t3, home.0, ev_mc as u16);
                let at = self.net.send_obs(
                    home,
                    dst,
                    self.config.l2.line_bytes as u32,
                    TrafficClass::OffChip,
                    t3,
                    ReqTag::NONE,
                    &self.obs,
                );
                self.enqueue_mem(
                    evicted * self.config.l2.line_bytes,
                    at,
                    PendingMem {
                        thread: usize::MAX,
                        responder: dst,
                        final_dst: None,
                        mc: ev_mc,
                        l2_line: evicted,
                        writeback: true,
                        prefetch: false,
                        req: ReqTag::NONE,
                    },
                );
            }
        }
        if res.hit {
            self.l2_hits += 1;
            self.obs.req_l2_hit(req, t3);
            let t4 = self.net.send_obs(
                home,
                node,
                self.config.l2.line_bytes as u32,
                TrafficClass::OnChip,
                t3,
                req.phase(Phase::Reply),
                &self.obs,
            );
            self.obs.retire(req, t4);
            self.schedule(t4, EventKind::MissReturn { thread });
            let outcome = if res.prefetched_hit {
                DemandOutcome::PrefetchedHit
            } else {
                DemandOutcome::L2Hit
            };
            self.pf_on_demand(home, ref_id, l2_line, outcome, t3);
            self.after_access(workload, thread, t1, true);
            return;
        }
        // Same late-join rendezvous as the private path, at the home bank;
        // the landing prefetch additionally forwards the line to the
        // requester.
        if let Some(token) = self.pf_late_join(home, l2_line) {
            let pf = self.pf.as_mut().expect("late join without prefetch state");
            pf.waiters.entry(token).or_default().push(PfWaiter {
                thread,
                final_dst: Some(node),
                req,
            });
            self.pf_on_demand(home, ref_id, l2_line, DemandOutcome::PrefetchedHit, t3);
            self.after_access(workload, thread, t1, true);
            return;
        }
        let mc = if self.config.optimal {
            self.mapping.nearest_mc(home).0 as usize
        } else {
            self.mc_of_paddr(paddr)
        };
        let mc = self.live_mc(mc, home, t3);
        let mc_node = self.mc_node(mc);
        self.offchip += 1;
        self.node_mc_requests[home.0 as usize][mc] += 1;
        self.obs.offchip(req, t3, home.0, mc as u16);
        let t4 = self.net.send_obs(
            home,
            mc_node,
            self.config.control_bytes,
            TrafficClass::OffChip,
            t3,
            req,
            &self.obs,
        );
        self.enqueue_mem(
            paddr,
            t4,
            PendingMem {
                thread,
                responder: home,
                final_dst: Some(node),
                mc,
                l2_line,
                writeback: false,
                prefetch: false,
                req,
            },
        );
        self.pf_on_demand(home, ref_id, l2_line, DemandOutcome::OffChip, t3);
        self.after_access(workload, thread, t1, true);
    }

    /// A demand L2 access resolved against (possibly) prefetched state:
    /// a hit on an untouched prefetched line is *useful*, the eviction of
    /// one is *harmful* (pollution). Both feed the accuracy throttle.
    fn pf_demand_result(&mut self, slice: NodeId, useful: bool, harmful: bool) {
        if !(useful || harmful) {
            return;
        }
        let Some(pf) = self.pf.as_mut() else { return };
        let s = &mut pf.slices[slice.0 as usize];
        if useful {
            pf.summary.useful += 1;
            s.resolve(true);
        }
        if harmful {
            pf.summary.harmful += 1;
            s.resolve(false);
        }
        if useful {
            self.obs.prefetch(PfEvent::Useful, slice.0, 1);
        }
        if harmful {
            self.obs.prefetch(PfEvent::Harmful, slice.0, 1);
        }
    }

    /// If a prefetch for `l2_line` is in flight to `slice`, counts the
    /// late join and returns its token for waiter registration.
    fn pf_late_join(&mut self, slice: NodeId, l2_line: u64) -> Option<u64> {
        let token = {
            let pf = self.pf.as_mut()?;
            let &token = pf.inflight.get(&(slice.0, l2_line))?;
            pf.summary.late += 1;
            pf.slices[slice.0 as usize].resolve(true);
            token
        };
        self.obs.prefetch(PfEvent::Late, slice.0, 1);
        Some(token)
    }

    /// Trains the slice prefetcher at `slice` on one demand access and
    /// issues whatever candidates survive its gating. Called *after* the
    /// demand's own messages are sent at `now`, so prefetch traffic queues
    /// behind demand traffic on every shared link (demand priority).
    fn pf_on_demand(
        &mut self,
        slice: NodeId,
        ref_id: u32,
        l2_line: u64,
        outcome: DemandOutcome,
        now: u64,
    ) {
        let Some(mut pf) = self.pf.take() else { return };
        let before = pf.summary;
        pf.scratch.clear();
        pf.slices[slice.0 as usize].on_demand(
            ref_id,
            l2_line,
            outcome,
            &mut pf.summary,
            &mut pf.scratch,
        );
        for i in 0..pf.scratch.len() {
            let line = pf.scratch[i];
            self.pf_try_issue(&mut pf, slice, line, now);
        }
        let after = pf.summary;
        self.pf = Some(pf);
        self.pf_obs_diff(slice.0, before, after);
    }

    /// Issues one candidate line from `slice` unless the issue-side
    /// filters reject it.
    fn pf_try_issue(&mut self, pf: &mut PfState, slice: NodeId, line: u64, now: u64) {
        let node = slice.0 as usize;
        // Already resident or already being fetched: the engine's work is
        // simply done (not a drop — nothing was lost).
        if self.l2[node].contains(line) || pf.inflight.contains_key(&(slice.0, line)) {
            return;
        }
        if pf.inflight_count[node] as usize >= self.config.prefetch.queue_cap {
            pf.summary.dropped += 1;
            return;
        }
        let paddr = line * self.config.l2.line_bytes;
        let mc = self.mc_of_paddr(paddr);
        // Prefetches never re-home: a speculative fetch is not worth a
        // detour, so a dark controller just swallows it.
        if self.mc_dark(mc, now) {
            pf.summary.dropped += 1;
            return;
        }
        pf.summary.issued += 1;
        let mc_node = self.mc_node(mc);
        let at = self.net.send_obs(
            slice,
            mc_node,
            self.config.control_bytes,
            TrafficClass::OffChip,
            now,
            ReqTag::NONE,
            &self.obs,
        );
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(
            token,
            PendingMem {
                thread: usize::MAX,
                responder: slice,
                final_dst: None,
                mc,
                l2_line: line,
                writeback: false,
                prefetch: true,
                req: ReqTag::NONE,
            },
        );
        pf.inflight.insert((slice.0, line), token);
        pf.inflight_count[node] += 1;
        let local = self.mc_local_addr(paddr);
        let done = self.mcs[mc].enqueue_class_obs(local, token, at, mc as u16, true, &self.obs);
        self.schedule_completions(&done);
        self.update_poll(mc);
    }

    /// Mirrors summary deltas from one trigger into the obs families, so
    /// the `pf.*` counters match `RunStats::prefetch` by construction.
    fn pf_obs_diff(&mut self, node: u16, before: PrefetchSummary, after: PrefetchSummary) {
        let o = &self.obs;
        o.prefetch(
            PfEvent::Candidates,
            node,
            after.candidates - before.candidates,
        );
        o.prefetch(PfEvent::Gated, node, after.gated - before.gated);
        o.prefetch(PfEvent::Issued, node, after.issued - before.issued);
        o.prefetch(PfEvent::Dropped, node, after.dropped - before.dropped);
        o.prefetch(
            PfEvent::PredCorrect,
            node,
            after.pred_correct - before.pred_correct,
        );
        o.prefetch(
            PfEvent::PredTotal,
            node,
            after.pred_total - before.pred_total,
        );
    }

    /// A prefetch's memory round trip finished: install the line (a no-op
    /// if a racing demand already owns it), resume late-joined demands,
    /// and on a transient-error drop let those demands fail exactly like
    /// a dropped demand request.
    fn finish_prefetch(
        &mut self,
        workload: &TraceWorkload,
        ctx: PendingMem,
        token: u64,
        now: u64,
        dropped: bool,
    ) {
        let mut pf = self
            .pf
            .take()
            .expect("prefetch completion without prefetch state");
        let slice = ctx.responder;
        let node = slice.0 as usize;
        pf.inflight.remove(&(slice.0, ctx.l2_line));
        pf.inflight_count[node] -= 1;
        let waiters = pf.waiters.remove(&token).unwrap_or_default();
        let mc_node = self.mc_node(ctx.mc);
        if dropped {
            pf.summary.dropped += 1;
            self.pf = Some(pf);
            self.obs.prefetch(PfEvent::Dropped, slice.0, 1);
            // Waiting demands resume on a control-sized error reply along
            // the normal response path; the line is not installed.
            for w in waiters {
                let t1 = self.net.send_obs(
                    mc_node,
                    slice,
                    self.config.control_bytes,
                    TrafficClass::OffChip,
                    now,
                    w.req.phase(Phase::Reply),
                    &self.obs,
                );
                let t_end = match w.final_dst {
                    Some(dst) => self.net.send_obs(
                        slice,
                        dst,
                        self.config.control_bytes,
                        TrafficClass::OnChip,
                        t1,
                        w.req.phase(Phase::Reply),
                        &self.obs,
                    ),
                    None => t1,
                };
                self.obs.drop_req(w.req, t_end);
                self.miss_return(workload, w.thread, t_end);
            }
            return;
        }
        // Data travels MC → slice; the install marks the line prefetched
        // so a later demand hit counts as useful.
        let t1 = self.net.send_obs(
            mc_node,
            slice,
            self.config.l2.line_bytes as u32,
            TrafficClass::OffChip,
            now,
            ReqTag::NONE,
            &self.obs,
        );
        let res = self.l2[node].install_prefetch(ctx.l2_line);
        if res.evicted_prefetched {
            pf.summary.harmful += 1;
            pf.slices[node].resolve(false);
        }
        let evicted_prefetched = res.evicted_prefetched;
        self.pf = Some(pf);
        if evicted_prefetched {
            self.obs.prefetch(PfEvent::Harmful, slice.0, 1);
        }
        if let Some(evicted) = res.evicted {
            // The victim leaves the slice's directory view, but its
            // writeback is not modelled: speculation must never add
            // demand memory traffic.
            if self.config.l2_mode == L2Mode::Private {
                self.dir.remove_sharer(evicted, node);
            }
        }
        if self.config.l2_mode == L2Mode::Private {
            // The slice now holds the line: make it discoverable for
            // cache-to-cache forwarding, like any demand fill.
            self.dir.add_sharer(ctx.l2_line, node);
        }
        for w in waiters {
            let t_end = match w.final_dst {
                Some(dst) => self.net.send_obs(
                    slice,
                    dst,
                    self.config.l2.line_bytes as u32,
                    TrafficClass::OnChip,
                    t1,
                    w.req.phase(Phase::Reply),
                    &self.obs,
                ),
                None => t1,
            };
            self.obs.retire(w.req, t_end);
            self.miss_return(workload, w.thread, t_end);
        }
    }

    fn enqueue_mem(&mut self, paddr: u64, arrival: u64, ctx: PendingMem) {
        let token = self.next_token;
        self.next_token += 1;
        let mc = ctx.mc;
        if ctx.req.is_some() {
            self.obs.bind_token(token, ctx.req);
        }
        self.pending.insert(token, ctx);
        let local = self.mc_local_addr(paddr);
        let done = self.mcs[mc].enqueue_obs(local, token, arrival, mc as u16, &self.obs);
        self.schedule_completions(&done);
        self.update_poll(mc);
    }

    fn schedule_completions(&mut self, done: &[Completion]) {
        for c in done {
            self.schedule(
                c.finish,
                EventKind::MemDone {
                    token: c.token,
                    dropped: c.dropped,
                },
            );
        }
    }

    fn update_poll(&mut self, mc: usize) {
        if let Some(s) = self.mcs[mc].earliest_pending_start() {
            let due = s.max(1);
            if self.mc_next_poll[mc].map(|t| due < t).unwrap_or(true) {
                self.mc_next_poll[mc] = Some(due);
                self.schedule(due, EventKind::McPoll { mc });
            }
        }
    }

    fn handle_poll(&mut self, mc: usize, now: u64) {
        if self.mc_next_poll[mc] == Some(now) {
            self.mc_next_poll[mc] = None;
        }
        let done = self.mcs[mc].poll_obs(now, mc as u16, &self.obs);
        self.schedule_completions(&done);
        self.update_poll(mc);
    }

    fn handle_mem_done(&mut self, workload: &TraceWorkload, token: u64, now: u64, dropped: bool) {
        let ctx = self
            .pending
            .remove(&token)
            .expect("completion for unknown token");
        if ctx.prefetch {
            self.finish_prefetch(workload, ctx, token, now, dropped);
            return;
        }
        if ctx.writeback {
            // The line is in DRAM; nothing waits on it. A dropped
            // writeback simply never lands.
            if dropped {
                self.dropped += 1;
            }
            let _ = now;
            return;
        }
        let mc_node = self.mc_node(ctx.mc);
        if dropped {
            // Retry cap exhausted: the controller abandons the request and
            // a control-sized error reply walks the normal response path,
            // so the waiting thread still resumes. The line is NOT
            // installed and no sharer is recorded — a later touch misses
            // again and re-fetches.
            self.dropped += 1;
            let t1 = self.net.send_obs(
                mc_node,
                ctx.responder,
                self.config.control_bytes,
                TrafficClass::OffChip,
                now,
                ctx.req.phase(Phase::Reply),
                &self.obs,
            );
            let t_end = match ctx.final_dst {
                Some(dst) => self.net.send_obs(
                    ctx.responder,
                    dst,
                    self.config.control_bytes,
                    TrafficClass::OnChip,
                    t1,
                    ctx.req.phase(Phase::Reply),
                    &self.obs,
                ),
                None => t1,
            };
            self.obs.drop_req(ctx.req, t_end);
            self.miss_return(workload, ctx.thread, t_end);
            return;
        }
        let t1 = self.net.send_obs(
            mc_node,
            ctx.responder,
            self.config.l2.line_bytes as u32,
            TrafficClass::OffChip,
            now,
            ctx.req.phase(Phase::Reply),
            &self.obs,
        );
        match ctx.final_dst {
            // Shared L2: the home bank forwards the line to the requester.
            Some(dst) => {
                let t2 = self.net.send_obs(
                    ctx.responder,
                    dst,
                    self.config.l2.line_bytes as u32,
                    TrafficClass::OnChip,
                    t1,
                    ctx.req.phase(Phase::Reply),
                    &self.obs,
                );
                self.obs.retire(ctx.req, t2);
                self.miss_return(workload, ctx.thread, t2);
            }
            // Private L2: the requester's L2 now holds the line.
            None => {
                self.dir.add_sharer(ctx.l2_line, ctx.responder.0 as usize);
                self.obs.retire(ctx.req, t1);
                self.miss_return(workload, ctx.thread, t1);
            }
        }
    }

    /// The thread consumed one access at `now`. Misses occupy an MSHR; the
    /// thread proceeds to its next access unless all MSHRs are busy.
    fn after_access(&mut self, workload: &TraceWorkload, thread: usize, now: u64, miss: bool) {
        let mlp = self.config.mlp.max(1);
        {
            let st = &mut self.threads[thread];
            st.cursor += 1;
            st.finish = st.finish.max(now);
            if miss {
                st.outstanding += 1;
            }
            if st.outstanding >= mlp {
                st.blocked = true;
                return;
            }
        }
        self.schedule_next(workload, thread, now);
    }

    /// An outstanding miss returned at `now`.
    fn miss_return(&mut self, workload: &TraceWorkload, thread: usize, now: u64) {
        let unblock = {
            let st = &mut self.threads[thread];
            debug_assert!(st.outstanding > 0, "miss return without outstanding miss");
            st.outstanding -= 1;
            st.finish = st.finish.max(now);
            let u = st.blocked;
            st.blocked = false;
            u
        };
        if unblock {
            self.schedule_next(workload, thread, now);
        }
    }

    /// Schedules the thread's next access (if any) after `now`.
    fn schedule_next(&mut self, workload: &TraceWorkload, thread: usize, now: u64) {
        let cursor = self.threads[thread].cursor;
        if let Some(next) = workload.threads[thread].accesses.get(cursor) {
            self.schedule(now + next.gap as u64, EventKind::Issue { thread });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Access, ThreadTrace};
    use hoploc_layout::Granularity;
    use hoploc_noc::McPlacement;

    fn small_config() -> SimConfig {
        SimConfig {
            mesh: hoploc_noc::Mesh::new(4, 4),
            placement: McPlacement::Corners,
            granularity: Granularity::CacheLine,
            ..SimConfig::default()
        }
    }

    fn mapping(cfg: &SimConfig) -> L2ToMcMapping {
        L2ToMcMapping::nearest_cluster(cfg.mesh, &cfg.placement)
    }

    fn seq_trace(node: u16, lines: u64, stride: u64) -> ThreadTrace {
        ThreadTrace::new(
            NodeId(node),
            (0..lines)
                .map(|k| Access {
                    vaddr: k * stride,
                    write: false,
                    gap: 2,
                    ref_id: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn single_thread_completes() {
        let cfg = small_config();
        let m = mapping(&cfg);
        let sim = Simulator::new(cfg, m, PagePolicy::Interleaved);
        let w = TraceWorkload::single("t", vec![seq_trace(5, 100, 256)]);
        let stats = sim.run(&w);
        assert_eq!(stats.total_accesses, 100);
        assert!(stats.exec_cycles > 0);
        assert_eq!(stats.app_finish.len(), 1);
        assert_eq!(stats.app_finish[0], stats.exec_cycles);
    }

    #[test]
    fn repeated_line_hits_l1() {
        let cfg = small_config();
        let m = mapping(&cfg);
        let sim = Simulator::new(cfg, m, PagePolicy::Interleaved);
        let trace = ThreadTrace::new(
            NodeId(0),
            (0..50)
                .map(|_| Access {
                    vaddr: 128,
                    write: false,
                    gap: 1,
                    ref_id: 0,
                })
                .collect(),
        );
        let stats = sim.run(&TraceWorkload::single("t", vec![trace]));
        assert_eq!(stats.l1_hits, 49);
        assert_eq!(stats.offchip_accesses, 1);
    }

    #[test]
    fn streaming_goes_offchip() {
        let cfg = small_config();
        let m = mapping(&cfg);
        let sim = Simulator::new(cfg, m, PagePolicy::Interleaved);
        // Touch 4096 distinct 256B lines (1 MB): far beyond one L2.
        let stats = sim.run(&TraceWorkload::single("t", vec![seq_trace(0, 4096, 256)]));
        assert!(
            stats.offchip_accesses > 3000,
            "got {}",
            stats.offchip_accesses
        );
        assert!(stats.memory_latency() > 0.0);
        assert!(stats.offchip_net_latency() > 0.0);
    }

    #[test]
    fn private_l2_forwards_cache_to_cache() {
        let cfg = small_config();
        let m = mapping(&cfg);
        let sim = Simulator::new(cfg, m, PagePolicy::Interleaved);
        // Thread on node 0 touches lines; thread on node 15 touches the
        // same lines afterwards (long gaps so node 0 finishes first).
        let a = seq_trace(0, 64, 256);
        let b = ThreadTrace::new(
            NodeId(15),
            (0..64u64)
                .map(|k| Access {
                    vaddr: k * 256,
                    write: false,
                    gap: 400,
                    ref_id: 0,
                })
                .collect(),
        );
        let stats = sim.run(&TraceWorkload::single("t", vec![a, b]));
        assert!(
            stats.cache_to_cache > 0,
            "directory must forward some lines"
        );
    }

    #[test]
    fn shared_l2_uses_home_banks() {
        let mut cfg = small_config();
        cfg.l2_mode = L2Mode::Shared;
        let m = mapping(&cfg);
        let sim = Simulator::new(cfg, m, PagePolicy::Interleaved);
        let stats = sim.run(&TraceWorkload::single("t", vec![seq_trace(3, 512, 256)]));
        assert_eq!(stats.total_accesses, 512);
        // Home-bank requests generate on-chip traffic even for L2 misses.
        assert!(stats.net.on_chip.messages > 0);
        assert!(stats.offchip_accesses > 0);
    }

    #[test]
    fn optimal_mode_uses_nearest_mc_only() {
        let mut cfg = small_config();
        cfg.optimal = true;
        let m = mapping(&cfg);
        let nearest = m.nearest_mc(NodeId(0)).0 as usize;
        let sim = Simulator::new(cfg, m, PagePolicy::Interleaved);
        let stats = sim.run(&TraceWorkload::single("t", vec![seq_trace(0, 1024, 256)]));
        for (mc, &count) in stats.node_mc_requests[0].iter().enumerate() {
            if mc != nearest {
                assert_eq!(count, 0, "optimal mode must only use the nearest MC");
            }
        }
        assert!(stats.node_mc_requests[0][nearest] > 0);
    }

    #[test]
    fn optimal_is_faster_than_default() {
        let cfg = small_config();
        let m = mapping(&cfg);
        let base = Simulator::new(cfg.clone(), m.clone(), PagePolicy::Interleaved)
            .run(&TraceWorkload::single("t", vec![seq_trace(0, 2048, 256)]));
        let mut ocfg = cfg;
        ocfg.optimal = true;
        let opt = Simulator::new(ocfg, m, PagePolicy::Interleaved)
            .run(&TraceWorkload::single("t", vec![seq_trace(0, 2048, 256)]));
        assert!(
            opt.exec_cycles < base.exec_cycles,
            "optimal {} !< base {}",
            opt.exec_cycles,
            base.exec_cycles
        );
    }

    #[test]
    fn multiprogram_reports_per_app_finish() {
        let cfg = small_config();
        let m = mapping(&cfg);
        let sim = Simulator::new(cfg, m, PagePolicy::Interleaved);
        let a = TraceWorkload::single("a", vec![seq_trace(0, 100, 256)]);
        let b = TraceWorkload::single("b", vec![seq_trace(5, 400, 256)]);
        let w = TraceWorkload::multiprogram("a+b", vec![a, b]);
        let stats = sim.run(&w);
        assert_eq!(stats.app_finish.len(), 2);
        assert!(stats.app_finish[1] >= stats.app_finish[0]);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = small_config();
        let m = mapping(&cfg);
        let w = TraceWorkload::single("t", vec![seq_trace(0, 500, 256), seq_trace(7, 500, 256)]);
        let s1 = Simulator::new(cfg.clone(), m.clone(), PagePolicy::Interleaved).run(&w);
        let s2 = Simulator::new(cfg, m, PagePolicy::Interleaved).run(&w);
        assert_eq!(s1.exec_cycles, s2.exec_cycles);
        assert_eq!(s1.offchip_accesses, s2.offchip_accesses);
    }

    /// Asserts the observability mirror matches `RunStats` exactly: same
    /// timing, same counters, full hop histograms, per-MC aggregates.
    fn assert_obs_parity(stats: &RunStats, rep: &hoploc_obs::ObsReport) {
        assert_eq!(rep.counter("sim.accesses"), stats.total_accesses);
        assert_eq!(rep.offchip(), stats.offchip_accesses);
        assert_eq!(rep.counter("sim.cache_to_cache"), stats.cache_to_cache);
        assert_eq!(rep.counter("sim.writebacks"), stats.writebacks);
        assert_eq!(
            rep.counter_family("cache.l1.hits").iter().sum::<u64>(),
            stats.l1_hits
        );
        for class in [TrafficClass::OnChip, TrafficClass::OffChip] {
            let (name, cs) = match class {
                TrafficClass::OnChip => ("onchip", &stats.net.on_chip),
                TrafficClass::OffChip => ("offchip", &stats.net.off_chip),
            };
            assert_eq!(rep.counter(&format!("net.{name}.msgs")), cs.messages);
            assert_eq!(
                rep.counter(&format!("net.{name}.latency_cycles")),
                cs.total_latency
            );
            assert_eq!(rep.counter(&format!("net.{name}.hops")), cs.total_hops);
            let hist = rep.hop_histogram(name);
            for (h, &n) in cs.hop_histogram.iter().enumerate() {
                assert_eq!(hist[h.min(hist.len() - 1)], n, "hop bucket {h}");
            }
        }
        let served: Vec<u64> = stats.mc.iter().map(|m| m.served).collect();
        assert_eq!(rep.counter_family("mc.served"), &served[..]);
        let row_hits: Vec<u64> = stats.mc.iter().map(|m| m.row_hits).collect();
        assert_eq!(rep.counter_family("mc.row_hits"), &row_hits[..]);
        let queue: Vec<u64> = stats.mc.iter().map(|m| m.total_queue_cycles).collect();
        assert_eq!(rep.counter_family("mc.queue_cycles"), &queue[..]);
        for mc in 0..stats.mc.len() {
            assert_eq!(rep.mc_request_shares(mc), stats.mc_request_shares(mc));
        }
        let occ = rep.bank_queue_occupancy();
        let want = stats.bank_queue_occupancy();
        assert!((occ - want).abs() < 1e-12, "occupancy {occ} != {want}");
    }

    #[test]
    fn traced_run_matches_untraced_private() {
        let cfg = small_config();
        let m = mapping(&cfg);
        let w = TraceWorkload::single("t", vec![seq_trace(0, 1024, 256), seq_trace(9, 512, 256)]);
        let base = Simulator::new(cfg.clone(), m.clone(), PagePolicy::Interleaved).run(&w);
        let (stats, rep) = Simulator::new(cfg, m, PagePolicy::Interleaved)
            .with_obs(hoploc_obs::ObsConfig::default())
            .run_traced(&w);
        assert_eq!(stats.exec_cycles, base.exec_cycles);
        assert_eq!(stats.offchip_accesses, base.offchip_accesses);
        assert_eq!(
            stats.net.off_chip.total_latency,
            base.net.off_chip.total_latency
        );
        assert_obs_parity(&stats, &rep);
        // Every off-chip request leaves a closed span trail.
        assert!(rep
            .events()
            .iter()
            .any(|e| e.name == hoploc_obs::EvName::Offchip));
    }

    #[test]
    fn traced_run_matches_untraced_shared() {
        let mut cfg = small_config();
        cfg.l2_mode = L2Mode::Shared;
        let m = mapping(&cfg);
        let w = TraceWorkload::single("t", vec![seq_trace(3, 1024, 256)]);
        let base = Simulator::new(cfg.clone(), m.clone(), PagePolicy::Interleaved).run(&w);
        let (stats, rep) = Simulator::new(cfg, m, PagePolicy::Interleaved)
            .with_obs(hoploc_obs::ObsConfig::default())
            .run_traced(&w);
        assert_eq!(stats.exec_cycles, base.exec_cycles);
        assert_obs_parity(&stats, &rep);
    }

    #[test]
    fn counter_only_tracing_matches_spans_on() {
        let cfg = small_config();
        let m = mapping(&cfg);
        let w = TraceWorkload::single("t", vec![seq_trace(0, 768, 256)]);
        let (s1, full) = Simulator::new(cfg.clone(), m.clone(), PagePolicy::Interleaved)
            .with_obs(hoploc_obs::ObsConfig::default())
            .run_traced(&w);
        let (s2, lean) = Simulator::new(cfg, m, PagePolicy::Interleaved)
            .with_obs(hoploc_obs::ObsConfig {
                record_spans: false,
                ..hoploc_obs::ObsConfig::default()
            })
            .run_traced(&w);
        assert_eq!(s1.exec_cycles, s2.exec_cycles);
        assert_eq!(full.offchip(), lean.offchip());
        assert!(lean.events().is_empty());
        // Counters are independent of span recording.
        for name in [
            "sim.accesses",
            "sim.offchip",
            "net.onchip.msgs",
            "net.offchip.msgs",
            "net.link.flit_cycles",
            "net.link.wait_cycles",
            "mc.served",
            "mc.row_hits",
            "mc.bank.queue_cycles",
        ] {
            assert_eq!(
                full.counter_family(name),
                lean.counter_family(name),
                "{name}"
            );
        }
    }

    mod prefetch {
        use super::*;
        use hoploc_fault::{FaultPlan, McOutage};
        use hoploc_prefetch::{PrefetchConfig, PrefetchMode};

        fn with_mode(mode: PrefetchMode) -> SimConfig {
            SimConfig {
                prefetch: PrefetchConfig::with_mode(mode),
                ..small_config()
            }
        }

        /// A streaming trace with per-access `ref_id`s, as the workload
        /// generator would emit.
        fn stream_trace(node: u16, lines: u64, stride: u64) -> ThreadTrace {
            ThreadTrace::new(
                NodeId(node),
                (0..lines)
                    .map(|k| Access {
                        vaddr: k * stride,
                        write: false,
                        gap: 2,
                        ref_id: 7,
                    })
                    .collect(),
            )
        }

        #[test]
        fn off_mode_is_bit_identical_regardless_of_geometry() {
            // With the mode Off, every other prefetch knob must be inert:
            // the runs compare equal field-for-field (incl. f64s).
            let w = TraceWorkload::single("t", vec![seq_trace(0, 1024, 256)]);
            let cfg = small_config();
            let m = mapping(&cfg);
            let base = Simulator::new(cfg.clone(), m.clone(), PagePolicy::Interleaved).run(&w);
            let mut off = cfg;
            off.prefetch.degree = 16;
            off.prefetch.queue_cap = 1;
            let again = Simulator::new(off, m, PagePolicy::Interleaved).run(&w);
            assert_eq!(base, again);
            assert!(again.prefetch.is_empty());
        }

        #[test]
        fn stride_prefetch_covers_a_streaming_run() {
            let w = TraceWorkload::single("t", vec![stream_trace(0, 2048, 256)]);
            let cfg = small_config();
            let m = mapping(&cfg);
            let base = Simulator::new(cfg, m.clone(), PagePolicy::Interleaved).run(&w);
            let pcfg = with_mode(PrefetchMode::Stride);
            let opt = Simulator::new(pcfg, m, PagePolicy::Interleaved).run(&w);
            assert!(opt.prefetch.issued > 0, "stream must trigger the engine");
            assert!(
                opt.prefetch.useful + opt.prefetch.late > 0,
                "prefetches must cover some demand misses"
            );
            assert!(
                opt.offchip_accesses < base.offchip_accesses,
                "covered misses leave the demand off-chip path: {} !< {}",
                opt.offchip_accesses,
                base.offchip_accesses
            );
            assert_eq!(opt.total_accesses, base.total_accesses);
            // Demand conservation is stated over *demand* requests only.
            let served: u64 = opt.mc.iter().map(|m| m.served).sum();
            assert_eq!(served, opt.offchip_accesses);
        }

        #[test]
        fn gated_mode_scores_the_predictor() {
            let w = TraceWorkload::single("t", vec![stream_trace(0, 2048, 256)]);
            let cfg = with_mode(PrefetchMode::Gated);
            let m = mapping(&cfg);
            let stats = Simulator::new(cfg, m, PagePolicy::Interleaved).run(&w);
            let pf = stats.prefetch;
            assert!(pf.pred_total > 0, "every demand L2 access is scored");
            assert!(pf.candidates >= pf.gated, "gated is a subset of candidates");
            assert!(
                pf.issued + pf.dropped <= pf.candidates - pf.gated,
                "issue-side filtering only ever removes candidates"
            );
            // Measured accuracy is over demand outcomes, which the
            // prefetcher itself flips on-chip as it starts covering the
            // stream — so it need not stay high, only well-defined.
            assert!(pf.pred_correct > 0, "some predictions must score");
            let acc = pf.pred_accuracy();
            assert!(acc > 0.0 && acc <= 1.0, "got {acc}");
        }

        #[test]
        fn prefetch_runs_are_deterministic() {
            let w = TraceWorkload::single(
                "t",
                vec![stream_trace(0, 1024, 256), stream_trace(7, 512, 256)],
            );
            let cfg = with_mode(PrefetchMode::Gated);
            let m = mapping(&cfg);
            let a = Simulator::new(cfg.clone(), m.clone(), PagePolicy::Interleaved).run(&w);
            let b = Simulator::new(cfg, m, PagePolicy::Interleaved).run(&w);
            assert_eq!(a, b);
        }

        #[test]
        fn shared_l2_prefetches_at_the_home_bank() {
            let mut cfg = with_mode(PrefetchMode::Stream);
            cfg.l2_mode = L2Mode::Shared;
            let m = mapping(&cfg);
            let w = TraceWorkload::single("t", vec![stream_trace(3, 2048, 256)]);
            let stats = Simulator::new(cfg, m, PagePolicy::Interleaved).run(&w);
            assert_eq!(stats.total_accesses, 2048, "all demands consumed");
            assert!(stats.prefetch.issued > 0);
        }

        #[test]
        fn traced_prefetch_run_mirrors_summary_and_timing() {
            let w = TraceWorkload::single("t", vec![stream_trace(0, 1024, 256)]);
            let cfg = with_mode(PrefetchMode::Gated);
            let m = mapping(&cfg);
            let base = Simulator::new(cfg.clone(), m.clone(), PagePolicy::Interleaved).run(&w);
            let (stats, rep) = Simulator::new(cfg, m, PagePolicy::Interleaved)
                .with_obs(hoploc_obs::ObsConfig {
                    prefetch: true,
                    ..hoploc_obs::ObsConfig::default()
                })
                .run_traced(&w);
            assert_eq!(stats, base, "recording must not perturb timing");
            let pf = stats.prefetch;
            for (name, want) in [
                ("pf.candidates", pf.candidates),
                ("pf.gated", pf.gated),
                ("pf.issued", pf.issued),
                ("pf.useful", pf.useful),
                ("pf.late", pf.late),
                ("pf.harmful", pf.harmful),
                ("pf.dropped", pf.dropped),
                ("pf.pred.correct", pf.pred_correct),
                ("pf.pred.total", pf.pred_total),
            ] {
                assert_eq!(rep.counter_family(name).iter().sum::<u64>(), want, "{name}");
            }
            assert_obs_parity(&stats, &rep);
        }

        #[test]
        fn outage_drops_prefetches_without_rehoming() {
            let mut cfg = with_mode(PrefetchMode::Stride);
            cfg.faults = Some(FaultPlan {
                outages: vec![McOutage {
                    mc: 0,
                    from: 0,
                    until: u64::MAX / 2,
                }],
                ..FaultPlan::none()
            });
            let m = mapping(&cfg);
            let w = TraceWorkload::single("t", vec![stream_trace(0, 2048, 256)]);
            let stats = Simulator::new(cfg, m, PagePolicy::Interleaved).run(&w);
            // Demands re-home; prefetches aimed at the dark MC are dropped.
            assert_eq!(stats.mc[0].served + stats.mc[0].pf_served, 0);
            assert!(stats.prefetch.dropped > 0, "dark-MC candidates drop");
            assert!(stats.rehomed_requests > 0);
            let served: u64 = stats.mc.iter().map(|m| m.served).sum();
            assert_eq!(served, stats.offchip_accesses, "demands all serve");
        }
    }

    mod faults {
        use super::*;
        use hoploc_fault::{BankFault, FaultPlan, FaultRates, McBankFault, McOutage, RetryPolicy};

        #[test]
        fn empty_fault_plan_is_inert() {
            let cfg = small_config();
            let m = mapping(&cfg);
            let w =
                TraceWorkload::single("t", vec![seq_trace(0, 1024, 256), seq_trace(9, 512, 256)]);
            let base = Simulator::new(cfg.clone(), m.clone(), PagePolicy::Interleaved).run(&w);
            let mut fcfg = cfg;
            fcfg.faults = Some(FaultPlan::none());
            let faulted = Simulator::new(fcfg, m, PagePolicy::Interleaved).run(&w);
            assert_eq!(base, faulted, "Some(FaultPlan::none()) must equal None");
        }

        #[test]
        fn outage_rehomes_to_nearest_live_mc() {
            let mut cfg = small_config();
            cfg.faults = Some(FaultPlan {
                outages: vec![McOutage {
                    mc: 0,
                    from: 0,
                    until: u64::MAX / 2,
                }],
                ..FaultPlan::none()
            });
            let m = mapping(&cfg);
            let stats = Simulator::new(cfg, m, PagePolicy::Interleaved)
                .run(&TraceWorkload::single("t", vec![seq_trace(0, 2048, 256)]));
            assert!(
                stats.rehomed_requests > 0,
                "interleaving must hit the dark MC"
            );
            assert_eq!(stats.mc[0].served, 0, "dark controller must see no traffic");
            for row in &stats.node_mc_requests {
                assert_eq!(row[0], 0);
            }
            let served: u64 = stats.mc.iter().map(|m| m.served).sum();
            assert_eq!(
                served, stats.offchip_accesses,
                "re-homed requests all serve"
            );
            assert_eq!(stats.dropped_requests, 0);
        }

        #[test]
        fn all_dark_falls_back_to_preferred() {
            let mut cfg = small_config();
            cfg.faults = Some(FaultPlan {
                outages: (0..4)
                    .map(|mc| McOutage {
                        mc,
                        from: 0,
                        until: u64::MAX / 2,
                    })
                    .collect(),
                ..FaultPlan::none()
            });
            let m = mapping(&cfg);
            let stats = Simulator::new(cfg, m, PagePolicy::Interleaved)
                .run(&TraceWorkload::single("t", vec![seq_trace(0, 512, 256)]));
            // Nowhere to go: requests stay put, nothing is lost.
            assert_eq!(stats.rehomed_requests, 0);
            let served: u64 = stats.mc.iter().map(|m| m.served).sum();
            assert_eq!(served, stats.offchip_accesses);
        }

        #[test]
        fn capped_retries_drop_but_threads_still_finish() {
            let mut cfg = small_config();
            let banks = cfg.mc.banks as u16;
            cfg.faults = Some(FaultPlan {
                seed: 11,
                banks: (0..4u16)
                    .flat_map(|mc| {
                        (0..banks).map(move |bank| McBankFault {
                            mc,
                            fault: BankFault {
                                bank,
                                from: 0,
                                until: u64::MAX / 2,
                                stall_cycles: 0,
                                error_period: 1,
                            },
                        })
                    })
                    .collect(),
                retry: RetryPolicy {
                    base_backoff: 4,
                    max_backoff: 16,
                    max_retries: 2,
                },
                ..FaultPlan::none()
            });
            let m = mapping(&cfg);
            let stats = Simulator::new(cfg, m, PagePolicy::Interleaved)
                .run(&TraceWorkload::single("t", vec![seq_trace(0, 512, 256)]));
            // Every off-chip request fails all attempts, yet the run ends
            // with every access consumed: error replies resume threads.
            assert_eq!(stats.total_accesses, 512);
            assert!(stats.dropped_requests > 0);
            assert_eq!(stats.dropped_requests, stats.offchip_accesses);
            let dropped: u64 = stats.mc.iter().map(|m| m.dropped).sum();
            assert_eq!(dropped, stats.dropped_requests);
            let served: u64 = stats.mc.iter().map(|m| m.served).sum();
            assert_eq!(served, 0);
            assert_eq!(
                stats.backstop_flushes, 0,
                "drops must not rely on the backstop"
            );
        }

        #[test]
        fn traced_faulted_run_matches_untraced() {
            let topo = hoploc_fault::FaultTopo {
                links: 16 * 4,
                mcs: 4,
                banks_per_mc: 8,
            };
            let mut cfg = small_config();
            cfg.faults = Some(FaultPlan::from_seed(
                3,
                &topo,
                &FaultRates::moderate().with_horizon(1 << 16),
            ));
            let m = mapping(&cfg);
            let w = TraceWorkload::single("t", vec![seq_trace(0, 1024, 256)]);
            let base = Simulator::new(cfg.clone(), m.clone(), PagePolicy::Interleaved).run(&w);
            let (stats, rep) = Simulator::new(cfg, m, PagePolicy::Interleaved)
                .with_obs(hoploc_obs::ObsConfig::default())
                .run_traced(&w);
            assert_eq!(stats, base, "recording must not perturb faulted timing");
            let retries: u64 = stats.mc.iter().map(|m| m.retries).sum();
            assert_eq!(
                rep.counter_family("fault.mc.retries").iter().sum::<u64>(),
                retries
            );
            let dropped: u64 = stats.mc.iter().map(|m| m.dropped).sum();
            assert_eq!(
                rep.counter_family("fault.mc.dropped").iter().sum::<u64>(),
                dropped
            );
            assert_eq!(
                rep.counter_family("fault.rehomed").iter().sum::<u64>(),
                stats.rehomed_requests
            );
            assert_eq!(rep.counter("fault.link.hops"), stats.net.fault_hops);
        }

        #[test]
        fn rehoming_leaves_page_placement_untouched() {
            // Outages are routing-time only: the OS page allocator must
            // behave identically with and without the plan installed.
            let mut cfg = small_config();
            cfg.granularity = Granularity::Page;
            let m = mapping(&cfg);
            let w = TraceWorkload::single("t", vec![seq_trace(0, 192, 4096)]);
            let base = Simulator::new(cfg.clone(), m.clone(), PagePolicy::Interleaved).run(&w);
            cfg.faults = Some(FaultPlan {
                outages: vec![McOutage {
                    mc: 1,
                    from: 0,
                    until: u64::MAX / 2,
                }],
                ..FaultPlan::none()
            });
            let faulted = Simulator::new(cfg, m, PagePolicy::Interleaved).run(&w);
            assert_eq!(faulted.os_fallbacks, base.os_fallbacks);
            assert_eq!(faulted.total_accesses, base.total_accesses);
            assert!(faulted.rehomed_requests > 0);
            assert_eq!(faulted.mc[1].served, 0);
        }

        #[test]
        fn backstop_flush_is_loud_and_counted() {
            let cfg = small_config();
            let m = mapping(&cfg);
            let mut sim = Simulator::new(cfg, m, PagePolicy::Interleaved);
            // Manufacture the scheduling hole the backstop guards against:
            // a request queued behind a busy bank with no McPoll scheduled
            // for it (the `update_poll` call is deliberately skipped).
            let park = |sim: &mut Simulator, token: u64| {
                sim.next_token = token + 1;
                sim.pending.insert(
                    token,
                    PendingMem {
                        thread: usize::MAX,
                        responder: NodeId(0),
                        final_dst: None,
                        mc: 0,
                        l2_line: 0,
                        writeback: true,
                        prefetch: false,
                        req: ReqTag::NONE,
                    },
                );
            };
            park(&mut sim, 0);
            park(&mut sim, 1);
            let first = sim.mcs[0].enqueue_obs(0, 0, 10, 0, &sim.obs);
            assert_eq!(first.len(), 1, "idle bank finalizes the first arrival");
            let second = sim.mcs[0].enqueue_obs(0, 1, 10, 0, &sim.obs);
            assert!(second.is_empty(), "busy bank must park the second arrival");
            sim.schedule_completions(&first);
            let stats = sim.run_core(&TraceWorkload::single("t", vec![]));
            assert_eq!(stats.backstop_flushes, 1);
            assert!(sim.pending.is_empty());
        }
    }
}
