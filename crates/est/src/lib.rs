//! # hoploc-est
//!
//! Static locality and contention analysis: predicts each application's
//! off-chip behaviour — off-chip fraction, expected NoC hop count, and
//! per-MC queue pressure — from its affine IR, layout plan, and cluster
//! map alone, with **no simulation**.
//!
//! The cycle simulator answers "what happened"; this crate answers "what
//! will happen" in microseconds, by the same reasoning a compiler would
//! use (§5 of the paper): access matrices give footprints, footprints
//! against L2 capacity give reuse levels and miss counts, and the layout
//! plan's slot arithmetic gives the static traffic split across memory
//! controllers. Three surfaces build on the model:
//!
//! * [`estimate_app`] — the per-reference / per-array / per-app
//!   prediction ([`AppEstimate`]), consumed by `hoploc est`;
//! * [`performance_diagnostics`] — the `HL10xx` predicted-performance
//!   findings `hoploc check` folds into its report (a plan that will not
//!   help, a controller that will saturate, a working set that streams);
//! * [`cross_validate`] — the estimator-vs-simulator rank-correlation
//!   harness (Spearman ρ over the full app × kind × config matrix) that
//!   gates CI and self-times the estimator's speedup.
//!
//! The model is deliberately *rank-faithful* rather than cycle-accurate:
//! it must sort design points the way the simulator does (ρ ≥ 0.8), not
//! reproduce their absolute miss counts — though on degenerate
//! fits-in-cache configurations it is exact, and the property tests pin
//! that down along with capacity monotonicity and scale invariance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod json;
mod model;
mod rank;
mod xval;

pub use diag::{
    array_plan_hops, baseline_hops, check_array_plan, performance_diagnostics, plan_mc_shares,
    prefetch_diagnostics, HOP_IMPROVEMENT_FLOOR, L2_RESIDENT_CEILING, MC_SHARE_CEILING,
    TRAFFIC_SIGNIFICANCE,
};
pub use model::{
    estimate_app, estimate_app_fresh, estimate_placement, AppEstimate, ArrayEstimate, EstConfig,
    RefEstimate,
};
pub use rank::{ranks, spearman};
pub use xval::{
    cross_validate, render_text, standard_configs, xval_json, XvalCell, XvalReport, KINDS,
};

use json::{esc, num};

/// One prediction as a single-line JSON record — the `fidelity=est`
/// payload hoploc-serve returns, field-compatible where the concepts
/// overlap with the simulator's run records (`app`, `kind`,
/// `total_accesses`, `offchip_accesses`, `offchip_fraction`,
/// `avg_offchip_hops`) plus the estimator-only fields.
pub fn est_record_json(e: &AppEstimate) -> String {
    let shares = e
        .mc_shares
        .iter()
        .map(|s| num(*s))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"app\": \"{}\", \"kind\": \"{}\", \"fidelity\": \"est\", \
         \"total_accesses\": {}, \"offchip_accesses\": {}, \"offchip_fraction\": {}, \
         \"avg_offchip_hops\": {}, \"queue_pressure\": {}, \"mc_shares\": [{}], \
         \"streaming\": {}, \"prefetchability\": {}}}",
        esc(&e.app),
        hoploc_harness::kind_name(e.kind),
        e.total_accesses,
        e.predicted_offchip,
        num(e.offchip_fraction()),
        num(e.avg_offchip_hops),
        num(e.queue_pressure),
        shares,
        e.streaming,
        num(e.prefetchability()),
    )
}
