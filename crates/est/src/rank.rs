//! Rank statistics: Spearman correlation between predictions and ground
//! truth.
//!
//! The estimator is validated on *rank order*, not absolute error: its
//! job is to sort (app, kind, config) cells the same way the cycle
//! simulator does, so it can steer the layout pass and triage work
//! without ever running a simulation. Spearman's ρ — Pearson correlation
//! over tie-averaged ranks — is exactly that metric.

/// Tie-averaged ranks (1-based; equal values share the mean of the ranks
/// they span, the standard midrank convention).
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) hold the same value: midrank.
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation of two equal-length samples. Returns `0.0`
/// when either sample is degenerate (fewer than two points, or constant —
/// rank order is undefined there, and 0 is the conservative report).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must pair up");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let (rx, ry) = (ranks(xs), ranks(ys));
    let mean = (n as f64 + 1.0) / 2.0;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (a, b) in rx.iter().zip(&ry) {
        num += (a - mean) * (b - mean);
        dx += (a - mean) * (a - mean);
        dy += (b - mean) * (b - mean);
    }
    if dx == 0.0 || dy == 0.0 {
        return 0.0;
    }
    num / (dx * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_agreement_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 40.0, 80.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversal_is_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_get_midranks() {
        let r = ranks(&[5.0, 1.0, 5.0, 3.0]);
        assert_eq!(r, vec![3.5, 1.0, 3.5, 2.0]);
    }

    #[test]
    fn constant_sample_is_degenerate_zero() {
        let xs = [2.0, 2.0, 2.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(spearman(&xs, &ys), 0.0);
    }

    #[test]
    fn invariant_under_monotone_rescaling() {
        let xs = [0.3, 0.1, 0.9, 0.4];
        let ys = [2.0, 1.0, 7.0, 3.0];
        let scaled: Vec<f64> = xs.iter().map(|v| v * 1000.0 + 17.0).collect();
        assert!((spearman(&xs, &ys) - spearman(&scaled, &ys)).abs() < 1e-12);
    }
}
