//! Minimal hand-rolled JSON emission, matching the workspace's
//! zero-dependency convention (see `hoploc-harness::to_json`).

use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as JSON (finite with fixed precision; non-finite
/// values have no JSON literal and are reported as `null`).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}
