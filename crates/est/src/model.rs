//! The footprint / traffic model: predicting off-chip behaviour of one
//! (application, layout, run-kind) cell without simulation.
//!
//! ## Footprint model
//!
//! For each loop nest the estimator mirrors the trace generator's walk
//! geometry exactly (strides, light-nest subsampling, hot-nest replay,
//! block-distributed parallel chunks) and computes, for every *reuse
//! level* `ℓ` (loops `< ℓ` pinned, loops `≥ ℓ` varying), the number of
//! distinct L2 lines `L(ℓ)` each reference group touches:
//!
//! ```text
//! L(depth) = span_lines(depth)                       (pinned iteration)
//! L(ℓ)     = min(span_lines(ℓ), n_ℓ · L(ℓ+1))        (outer levels)
//! ```
//!
//! where `span_lines(ℓ)` counts the lines overlapped by the union image
//! box of the group's subscript functions ([`AffineAccess::subscript_bounds`])
//! and `n_ℓ` is the walked trip count of loop `ℓ`. The `min` recurrence
//! makes `L(ℓ) ≤ n_ℓ · L(ℓ+1)` by construction, which in turn makes the
//! predicted miss count *non-increasing in L2 capacity* — the property
//! test relies on this, not on numerical luck.
//!
//! The *fit level* `ℓ*` is the outermost level whose nest footprint fits
//! the effective capacity (per-node L2 for private mode, the aggregate
//! NUCA capacity for shared mode); every loop outside `ℓ*` re-streams the
//! level-`ℓ*` working set, so the nest's off-chip demand is
//! `L(ℓ*) · Π_{k<ℓ*} n_k` (times the replay count when even the full
//! nest footprint exceeds capacity). References whose subscripts ignore
//! the parallel iterator are *broadcast*: every core touches the same
//! lines, the chip fetches them off-chip once (the directory or home
//! bank serves the other cores), so they are counted once globally and
//! the parallel loop contributes no multiplier.
//!
//! ## Hop expectation and queue pressure
//!
//! Off-chip demand is split across memory controllers statically: the
//! layout plan's slot arithmetic ([`ArrayLayout::thread_mcs`]) for
//! optimized arrays, uniform interleave for original layouts, the owner
//! cluster's controllers for a friendly first-touch policy, the nearest
//! controller under the optimal-placement idealization. The expected
//! off-chip hop count weights each (requester, controller) pair with its
//! mesh distance — the requester being the core's node for private L2s
//! and the line's home tile for shared NUCA. Queue pressure is the
//! maximum controller share normalized so `1.0` = perfectly balanced and
//! `n_mcs` = everything on one controller.

use std::collections::HashMap;

use hoploc_affine::{AccessFn, AffineAccess, ArrayId, LoopNest, Program, RefKind};
use hoploc_layout::{ArrayLayout, Granularity, L2Mode, ProgramLayout};
use hoploc_noc::{L2ToMcMapping, NodeId};
use hoploc_sim::SimConfig;
use hoploc_workloads::{App, RunKind};

/// The machine parameters the estimator needs — a small projection of
/// [`SimConfig`] so predictions are comparable to a given simulation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EstConfig {
    /// Per-node L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 line size in bytes (the off-chip transfer unit).
    pub line_bytes: u64,
    /// Last-level cache organization.
    pub l2_mode: L2Mode,
    /// Interleaving granularity of physical addresses across MCs.
    pub granularity: Granularity,
    /// Number of mesh nodes (cores / L2 tiles).
    pub num_nodes: usize,
    /// Number of memory controllers.
    pub num_mcs: usize,
    /// Threads per core (Figure 24).
    pub threads_per_core: usize,
}

impl EstConfig {
    /// Projects a simulator configuration onto the estimator's inputs.
    pub fn from_sim(sim: &SimConfig) -> Self {
        Self {
            l2_bytes: sim.l2.size_bytes,
            line_bytes: sim.l2.line_bytes,
            l2_mode: sim.l2_mode,
            granularity: sim.granularity,
            num_nodes: sim.num_nodes(),
            num_mcs: sim.num_mcs(),
            threads_per_core: 1,
        }
    }

    /// Builder-style threads-per-core override.
    pub fn with_threads_per_core(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread per core");
        self.threads_per_core = threads;
        self
    }

    /// The capacity a working set is measured against: the per-node L2
    /// for private mode, the whole NUCA for shared mode.
    fn effective_capacity(&self) -> u64 {
        match self.l2_mode {
            L2Mode::Private => self.l2_bytes,
            L2Mode::Shared => self.l2_bytes * self.num_nodes as u64,
        }
    }
}

/// Prediction for one reference (nest, statement, reference coordinates
/// match the diagnostics' locations).
#[derive(Clone, Debug)]
pub struct RefEstimate {
    /// Nest index within the program.
    pub nest: usize,
    /// Statement index within the nest.
    pub statement: usize,
    /// Reference index within the statement.
    pub reference: usize,
    /// The referenced array's name.
    pub array: String,
    /// Accesses this reference issues (mirrors the trace walk).
    pub accesses: u64,
    /// Predicted off-chip line fetches attributed to this reference.
    pub predicted_offchip: u64,
    /// Whether the subscripts ignore the parallel iterator (all cores
    /// touch the same elements).
    pub broadcast: bool,
    /// Whether the reference goes through an index table (the prediction
    /// is a coarser approximation there).
    pub indexed: bool,
}

/// Prediction for one array, aggregated over all its references.
#[derive(Clone, Debug)]
pub struct ArrayEstimate {
    /// The array's name.
    pub array: String,
    /// Accesses to the array across all nests.
    pub accesses: u64,
    /// Predicted off-chip line fetches.
    pub predicted_offchip: u64,
    /// Predicted mean off-chip request hop distance for this array's
    /// traffic (`None` when the array generates no off-chip traffic).
    pub avg_hops: Option<f64>,
    /// Whether any reference to the array is broadcast.
    pub broadcast: bool,
    /// Whether any reference is indexed (estimate approximate).
    pub indexed: bool,
}

/// The full static prediction for one (application, layout, kind) cell.
#[derive(Clone, Debug)]
pub struct AppEstimate {
    /// Application name.
    pub app: String,
    /// The run kind predicted.
    pub kind: RunKind,
    /// Total accesses (exact mirror of the generated trace volume).
    pub total_accesses: u64,
    /// Predicted off-chip line fetches.
    pub predicted_offchip: u64,
    /// Predicted mean off-chip request hop distance.
    pub avg_offchip_hops: f64,
    /// Predicted per-MC traffic shares (sum to 1 when there is traffic).
    pub mc_shares: Vec<f64>,
    /// Max MC share × number of MCs: 1.0 = balanced, `n_mcs` = one
    /// controller takes everything.
    pub queue_pressure: f64,
    /// Whether the app streams (its working set exceeds capacity, so
    /// off-chip traffic scales with accesses rather than footprint).
    pub streaming: bool,
    /// Per-array breakdown.
    pub arrays: Vec<ArrayEstimate>,
    /// Per-reference breakdown.
    pub refs: Vec<RefEstimate>,
}

impl AppEstimate {
    /// Predicted off-chip fraction.
    pub fn offchip_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            return 0.0;
        }
        self.predicted_offchip as f64 / self.total_accesses as f64
    }

    /// Fraction of accesses a stride/stream prefetcher can learn from:
    /// accesses through affine (non-index-table) references. Indexed
    /// references follow profiled tables, so their address streams carry
    /// no stride for the reference-keyed tables to lock onto.
    pub fn prefetchability(&self) -> f64 {
        let total: u64 = self.refs.iter().map(|r| r.accesses).sum();
        if total == 0 {
            return 1.0;
        }
        let affine: u64 = self
            .refs
            .iter()
            .filter(|r| !r.indexed)
            .map(|r| r.accesses)
            .sum();
        affine as f64 / total as f64
    }
}

/// Number of `line`-byte lines overlapped by an element box (inclusive
/// per-dimension bounds, row-major, already clamped into the array).
/// Trailing fully-covered dimensions merge into contiguous runs.
fn lines_in_box(dims: &[i64], lo: &[i64], hi: &[i64], elem: u64, line: u64) -> u64 {
    let rank = dims.len();
    let mut w = vec![0i64; rank];
    for d in 0..rank {
        if hi[d] < lo[d] {
            return 0;
        }
        w[d] = hi[d] - lo[d] + 1;
    }
    // The contiguous run: the fastest dimension's width, extended outward
    // while a dimension is fully covered.
    let mut run: i128 = 1;
    let mut d = rank;
    while d > 0 {
        d -= 1;
        run *= w[d] as i128;
        if w[d] != dims[d] {
            break;
        }
    }
    let rows: i128 = w[..d].iter().map(|&x| x as i128).product();
    let run_bytes = run * elem as i128;
    let lines_per_run = (run_bytes + line as i128 - 1) / line as i128;
    let by_rows = rows * lines_per_run;
    // Rows shorter than a line pack several to a line: cap by the
    // row-major address span of the box.
    let linearize = |pt: &[i64]| -> i128 {
        let mut off = 0i128;
        for d in 0..rank {
            off = off * dims[d] as i128 + pt[d] as i128;
        }
        off
    };
    let lo_byte = linearize(lo) * elem as i128;
    let hi_byte = (linearize(hi) + 1) * elem as i128 - 1;
    let by_span = hi_byte / line as i128 - lo_byte / line as i128 + 1;
    by_rows.min(by_span).clamp(0, u64::MAX as i128) as u64
}

/// The union image box of a group of same-matrix accesses over an
/// iteration box, clamped into the array, rendered as distinct lines.
fn span_lines(
    accs: &[&AffineAccess],
    dims: &[i64],
    elem: u64,
    line: u64,
    ranges: &[(i64, i64)],
) -> u64 {
    let rank = dims.len();
    let mut lo = vec![i64::MAX; rank];
    let mut hi = vec![i64::MIN; rank];
    for a in accs {
        let b = a.subscript_bounds(ranges);
        for d in 0..rank {
            lo[d] = lo[d].min(b[d].0);
            hi[d] = hi[d].max(b[d].1);
        }
    }
    for d in 0..rank {
        lo[d] = lo[d].clamp(0, dims[d] - 1);
        hi[d] = hi[d].clamp(0, dims[d] - 1);
    }
    lines_in_box(dims, &lo, &hi, elem, line)
}

/// Walked trip counts and walk geometry of one nest for one thread,
/// mirroring `generate_traces`.
struct Walk {
    /// Inclusive iterator ranges, with the parallel dimension restricted
    /// to the thread's chunk (or the full range for the global walk).
    ranges: Vec<(i64, i64)>,
    /// Midpoints used to pin loops outside the reuse level.
    mids: Vec<i64>,
    /// Walked iteration count per loop (after strides).
    counts: Vec<u64>,
}

impl Walk {
    /// Walked iterations of the whole nest.
    fn points(&self) -> u64 {
        self.counts.iter().product()
    }

    /// `Π_{k<lvl} counts[k]`, optionally treating the parallel loop as a
    /// single iteration (broadcast accounting).
    fn outer_mult(&self, lvl: usize, skip_par: Option<usize>) -> u64 {
        self.counts[..lvl]
            .iter()
            .enumerate()
            .map(|(k, &c)| if Some(k) == skip_par { 1 } else { c })
            .product()
    }
}

/// The sampling strides `generate_traces` applies to one nest.
fn mirror_strides(nest: &LoopNest, gen: &hoploc_workloads::TraceGen, light: bool) -> Vec<i64> {
    let mut strides = vec![1i64; nest.depth()];
    if let Some(last) = strides.last_mut() {
        *last = gen.fastest_stride;
    }
    strides[nest.parallel_dim()] = 1;
    if light {
        let trips = nest.trip_count_estimates();
        let mut remaining = gen.light_stride_factor.max(1);
        for k in (0..nest.depth()).rev() {
            if k == nest.parallel_dim() || remaining <= 1 {
                continue;
            }
            let room = (trips[k] / strides[k]).max(1);
            let take = remaining.min(room);
            strides[k] *= take;
            remaining = (remaining + take - 1) / take;
        }
    }
    strides
}

/// Builds the walk geometry for `thread` (or the global walk when
/// `thread` is `None`).
fn walk_for(nest: &LoopNest, strides: &[i64], thread: Option<(usize, usize)>) -> Walk {
    let mut ranges = nest.iteration_ranges();
    let trips = nest.trip_count_estimates();
    let par = nest.parallel_dim();
    if let Some((t, n_threads)) = thread {
        let (c_lo, c_hi) = nest.chunk_for_core(t, n_threads);
        ranges[par] = (c_lo, c_hi - 1);
    }
    let mids: Vec<i64> = ranges
        .iter()
        .map(|&(lo, hi)| if lo > hi { lo } else { lo + (hi - lo) / 2 })
        .collect();
    let counts: Vec<u64> = (0..nest.depth())
        .map(|k| {
            let trip = if k == par {
                (ranges[par].1 - ranges[par].0 + 1).max(0)
            } else {
                trips[k].max(0)
            };
            ((trip + strides[k] - 1) / strides[k]).max(0) as u64
        })
        .collect();
    Walk {
        ranges,
        mids,
        counts,
    }
}

/// The `L(ℓ)` recurrence for one same-matrix group of accesses over one
/// walk. `skip_par` treats the parallel loop as a single iteration
/// (broadcast groups, whose boxes ignore it anyway).
fn level_lines(
    accs: &[&AffineAccess],
    dims: &[i64],
    elem: u64,
    line: u64,
    walk: &Walk,
    skip_par: Option<usize>,
) -> Vec<u64> {
    let depth = walk.ranges.len();
    let mut l = vec![0u64; depth + 1];
    let mut prev = 0u64;
    for lvl in (0..=depth).rev() {
        let r: Vec<(i64, i64)> = (0..depth)
            .map(|k| {
                if k < lvl {
                    (walk.mids[k], walk.mids[k])
                } else {
                    walk.ranges[k]
                }
            })
            .collect();
        // An empty chunk (thread past the parallel range) touches nothing.
        if walk.counts.contains(&0) {
            l[lvl] = 0;
            continue;
        }
        let span = span_lines(accs, dims, elem, line, &r);
        // Walked-point cap: heavy subsampling can touch fewer lines than
        // the geometric span.
        let pts: u64 = (lvl..depth)
            .map(|k| {
                if Some(k) == skip_par {
                    1
                } else {
                    walk.counts[k]
                }
            })
            .product::<u64>()
            .saturating_mul(accs.len() as u64);
        let val = if lvl == depth {
            span.min(pts.max(1))
        } else {
            let mult = if Some(lvl) == skip_par {
                1
            } else {
                walk.counts[lvl].max(1)
            };
            span.min(prev.saturating_mul(mult)).min(pts)
        };
        l[lvl] = val;
        prev = val;
    }
    l
}

/// A same-matrix group of affine references to one array in one nest.
struct RefGroup {
    /// `(statement, reference)` coordinates of the members.
    members: Vec<(usize, usize)>,
    accesses: Vec<AffineAccess>,
}

/// Everything the model computed for one (nest, array) pair.
struct NestArray {
    array: ArrayId,
    part_groups: Vec<RefGroup>,
    bcast_groups: Vec<RefGroup>,
    /// `(statement, reference)` coordinates of indexed refs.
    indexed: Vec<(usize, usize)>,
}

/// Distinct L2 lines named by a profiled table over a 1-D array.
fn table_lines(table: &[i64], extent: i64, elem: u64, line: u64) -> u64 {
    let per_line = (line / elem).max(1) as i64;
    let n_lines = ((extent + per_line - 1) / per_line).max(1) as usize;
    let mut seen = vec![false; n_lines];
    let mut count = 0u64;
    for &v in table {
        let l = (v.clamp(0, extent - 1) / per_line) as usize;
        if !seen[l] {
            seen[l] = true;
            count += 1;
        }
    }
    count
}

/// Splits one nest's references into the model's groups.
fn group_refs(program: &Program, nest: &LoopNest) -> Vec<NestArray> {
    let par = nest.parallel_dim();
    let mut order: Vec<ArrayId> = Vec::new();
    let mut by_array: HashMap<ArrayId, NestArray> = HashMap::new();
    for (si, stmt) in nest.body().iter().enumerate() {
        for (ri, r) in stmt.refs.iter().enumerate() {
            let entry = by_array.entry(r.array).or_insert_with(|| {
                order.push(r.array);
                NestArray {
                    array: r.array,
                    part_groups: Vec::new(),
                    bcast_groups: Vec::new(),
                    indexed: Vec::new(),
                }
            });
            match &r.access {
                AccessFn::Affine(a) => {
                    let groups = if a.depends_on(par) {
                        &mut entry.part_groups
                    } else {
                        &mut entry.bcast_groups
                    };
                    match groups
                        .iter_mut()
                        .find(|g| g.accesses[0].matrix() == a.matrix())
                    {
                        Some(g) => {
                            g.members.push((si, ri));
                            g.accesses.push(a.clone());
                        }
                        None => groups.push(RefGroup {
                            members: vec![(si, ri)],
                            accesses: vec![a.clone()],
                        }),
                    }
                }
                AccessFn::Indexed { table, .. } => {
                    if program.table(*table).is_empty() {
                        continue;
                    }
                    entry.indexed.push((si, ri));
                }
            }
        }
    }
    order
        .into_iter()
        .map(|a| by_array.remove(&a).unwrap())
        .collect()
}

/// Traffic accumulator: per-MC line counts plus hop-weighted volume.
struct Traffic {
    per_mc: Vec<f64>,
    hops: f64,
    volume: f64,
}

impl Traffic {
    fn new(n_mcs: usize) -> Self {
        Self {
            per_mc: vec![0.0; n_mcs],
            hops: 0.0,
            volume: 0.0,
        }
    }

    fn merge(&mut self, other: &Traffic) {
        for (a, b) in self.per_mc.iter_mut().zip(&other.per_mc) {
            *a += b;
        }
        self.hops += other.hops;
        self.volume += other.volume;
    }

    fn avg_hops(&self) -> Option<f64> {
        (self.volume > 0.0).then(|| self.hops / self.volume)
    }
}

/// Where an off-chip request is issued from.
#[derive(Clone, Copy)]
enum Requester {
    /// A specific node (private-L2 core, or a shared-L2 home tile).
    Node(NodeId),
    /// Uniformly spread over all nodes.
    Uniform,
}

/// Splits `misses` lines of off-chip traffic for `thread`'s share of one
/// array across controllers, weighting hops by requester distance.
#[allow(clippy::too_many_arguments)]
fn route(
    acc: &mut Traffic,
    misses: f64,
    requester: Requester,
    al: &ArrayLayout,
    thread: Option<usize>,
    kind: RunKind,
    mapping: &L2ToMcMapping,
    cfg: &EstConfig,
    first_touch_friendly: bool,
) {
    if misses <= 0.0 {
        return;
    }
    acc.volume += misses;
    let mesh = mapping.mesh();
    let n_nodes = cfg.num_nodes;
    let hop_to = |mc: hoploc_noc::McId| -> f64 {
        let mn = mapping.mc_node(mc);
        match requester {
            Requester::Node(n) => mesh.hop_distance(n, mn) as f64,
            Requester::Uniform => {
                (0..n_nodes)
                    .map(|i| mesh.hop_distance(NodeId(i as u16), mn) as f64)
                    .sum::<f64>()
                    / n_nodes as f64
            }
        }
    };
    let mut add = |mc: hoploc_noc::McId, w: f64| {
        acc.per_mc[mc.0 as usize] += w;
        acc.hops += w * hop_to(mc);
    };
    match kind {
        RunKind::Optimal => match requester {
            // The optimal idealization sends every request to the
            // requester's nearest controller.
            Requester::Node(n) => add(mapping.nearest_mc(n), misses),
            Requester::Uniform => {
                let w = misses / n_nodes as f64;
                for i in 0..n_nodes {
                    let n = NodeId(i as u16);
                    let mc = mapping.nearest_mc(n);
                    acc.per_mc[mc.0 as usize] += w;
                    acc.hops += w * mesh.hop_distance(n, mapping.mc_node(mc)) as f64;
                }
            }
        },
        RunKind::FirstTouch => {
            // A friendly first touch lands each owner's pages on its
            // cluster's controllers; a mismatched one scatters pages with
            // no useful correlation to the requester — model as uniform.
            let owner_mcs = if first_touch_friendly {
                let owner = match thread {
                    Some(t) => mapping.cluster_of(node_of_thread(al, t, cfg)),
                    // Broadcast data is first touched by thread 0.
                    None => mapping.cluster_of(node_of_thread(al, 0, cfg)),
                };
                Some(mapping.cluster_mcs(owner).to_vec())
            } else {
                None
            };
            match owner_mcs {
                Some(mcs) if !mcs.is_empty() => {
                    let w = misses / mcs.len() as f64;
                    for mc in mcs {
                        add(mc, w);
                    }
                }
                _ => {
                    let w = misses / cfg.num_mcs as f64;
                    for m in 0..cfg.num_mcs {
                        add(hoploc_noc::McId(m as u16), w);
                    }
                }
            }
        }
        RunKind::Baseline | RunKind::Optimized => {
            let mcs = thread.and_then(|t| al.thread_mcs(t));
            match mcs {
                // The localized plan pins the thread's units to its
                // group's slots (one list entry per slot, so shared
                // controllers weight correctly).
                Some(mcs) if !mcs.is_empty() => {
                    let w = misses / mcs.len() as f64;
                    for mc in mcs {
                        add(mc, w);
                    }
                }
                // Original layouts (and broadcast traffic of localized
                // ones) interleave uniformly.
                _ => match plan_slot_histogram(al, cfg.num_mcs) {
                    Some(hist) if thread.is_none() => {
                        for (m, share) in hist.iter().enumerate() {
                            add(hoploc_noc::McId(m as u16), misses * share);
                        }
                    }
                    _ => {
                        let w = misses / cfg.num_mcs as f64;
                        for m in 0..cfg.num_mcs {
                            add(hoploc_noc::McId(m as u16), w);
                        }
                    }
                },
            }
        }
    }
}

/// The per-MC share of a localized plan's slots (the static traffic
/// split of data with no single owning thread).
fn plan_slot_histogram(al: &ArrayLayout, n_mcs: usize) -> Option<Vec<f64>> {
    let v = al.plan_view()?;
    let mut hist = vec![0.0; n_mcs];
    let mut total = 0.0;
    for slots in v.group_slots {
        for &s in slots {
            hist[(s % v.n_mcs) as usize] += 1.0;
            total += 1.0;
        }
    }
    if total == 0.0 {
        return None;
    }
    for h in &mut hist {
        *h /= total;
    }
    Some(hist)
}

/// The mesh node thread `t` runs on (threads share cores under SMT).
fn node_of_thread(_al: &ArrayLayout, t: usize, cfg: &EstConfig) -> NodeId {
    NodeId((t / cfg.threads_per_core % cfg.num_nodes) as u16)
}

/// The off-chip *requester* for thread `t`'s share of array `al`: the
/// core's node for private L2s; for shared NUCA, the home tile the
/// localized plan pins the thread's lines to, when that is statically a
/// single node (cache-line units, super-group commensurate with the
/// mesh), else uniform.
fn requester_for(al: &ArrayLayout, binding_node: NodeId, t: usize, cfg: &EstConfig) -> Requester {
    match cfg.l2_mode {
        L2Mode::Private => Requester::Node(binding_node),
        L2Mode::Shared => {
            if cfg.granularity == Granularity::CacheLine && al.unit_bytes() as u64 == cfg.line_bytes
            {
                if let Some(v) = al.plan_view() {
                    if (v.n_slots_total as usize).is_multiple_of(cfg.num_nodes) {
                        if let Some(g) = v.thread_group.get(t) {
                            let slots = &v.group_slots[*g as usize];
                            if slots.len() == 1 {
                                return Requester::Node(NodeId(
                                    (slots[0] as usize % cfg.num_nodes) as u16,
                                ));
                            }
                        }
                    }
                }
            }
            Requester::Uniform
        }
    }
}

/// One reference class during per-ref attribution: (member (statement,
/// reference) coordinates, class accesses, class misses, broadcast?,
/// indexed?).
type RefClass<'a> = (&'a [(usize, usize)], u64, u64, bool, bool);

/// Per-(nest, array) model output carried into aggregation.
struct ComponentMisses {
    nest: usize,
    array: ArrayId,
    /// Per-thread partitioned misses.
    part: Vec<u64>,
    /// Global broadcast misses.
    bcast: u64,
    /// Global indexed misses.
    indexed: u64,
    /// Accesses by class (partitioned affine, broadcast affine, indexed).
    acc_part: u64,
    acc_bcast: u64,
    acc_indexed: u64,
    /// Level-0 (whole-nest) footprints, for the app-fits cold pass:
    /// per-thread partitioned lines, their all-thread union, and the
    /// global broadcast + indexed lines.
    l0_part: Vec<u64>,
    l0_part_glob: u64,
    l0_bcast: u64,
    l0_idx: u64,
    /// `(statement, reference)` members by class, for attribution.
    part_members: Vec<(usize, usize)>,
    bcast_members: Vec<(usize, usize)>,
    idx_members: Vec<(usize, usize)>,
    streaming: bool,
}

/// Predicts one (application, layout, kind) cell. The layout must be the
/// one the corresponding simulation replays (take it from
/// `Suite::layout_plan`), so prediction error can only come from the
/// model, never from divergent inputs.
pub fn estimate_app(
    app: &App,
    layout: &ProgramLayout,
    mapping: &L2ToMcMapping,
    kind: RunKind,
    cfg: &EstConfig,
) -> AppEstimate {
    let program = &app.program;
    let n_cores = layout.binding().len();
    let n_threads = n_cores * cfg.threads_per_core;
    let line = cfg.line_bytes;
    let cap = cfg.effective_capacity();
    let nests = program.nests();
    let max_weight = nests.iter().map(|n| n.weight()).max().unwrap_or(1);

    // ── Per-nest footprint model ───────────────────────────────────────
    let mut components: Vec<ComponentMisses> = Vec::new();

    for (ni, nest) in nests.iter().enumerate() {
        let light = nest.weight().saturating_mul(8) < max_weight;
        let strides = mirror_strides(nest, &app.gen, light);
        let reps = if light { 1 } else { app.gen.hot_reps.max(1) } as u64;
        let par = nest.parallel_dim();
        let groups = group_refs(program, nest);
        if groups.is_empty() {
            continue;
        }
        let global_walk = walk_for(nest, &strides, None);
        let thread_walks: Vec<Walk> = (0..n_threads)
            .map(|t| walk_for(nest, &strides, Some((t, n_threads))))
            .collect();

        // Level line counts per (array, class).
        struct NestArrayLines {
            /// Per thread, per level.
            part: Vec<Vec<u64>>,
            /// Partitioned lines over the *global* walk (all threads'
            /// chunks at once) — the union footprint, free of the halo
            /// double-counting in `Σ_t part[t]`.
            part_glob: u64,
            /// Global, per level.
            bcast: Vec<u64>,
            indexed: u64,
            array_lines: u64,
        }
        let depth = nest.depth();
        let mut lines: Vec<NestArrayLines> = Vec::with_capacity(groups.len());
        for g in &groups {
            let decl = program.array(g.array);
            let dims = decl.dims();
            let elem = decl.elem_size() as u64;
            let array_lines = ((decl.size_bytes() as u64).saturating_add(line - 1) / line).max(1);
            let sum_levels = |walk: &Walk, groups: &[RefGroup], skip: Option<usize>| -> Vec<u64> {
                let mut tot = vec![0u64; depth + 1];
                for grp in groups {
                    let accs: Vec<&AffineAccess> = grp.accesses.iter().collect();
                    let l = level_lines(&accs, dims, elem, line, walk, skip);
                    for (t, v) in tot.iter_mut().zip(l) {
                        *t = t.saturating_add(v).min(array_lines);
                    }
                }
                tot
            };
            let part: Vec<Vec<u64>> = thread_walks
                .iter()
                .map(|w| sum_levels(w, &g.part_groups, None))
                .collect();
            let part_glob = sum_levels(&global_walk, &g.part_groups, None)[0];
            let bcast = sum_levels(&global_walk, &g.bcast_groups, Some(par));
            // Distinct target lines named by this array's index tables.
            let indexed: u64 = nest
                .body()
                .iter()
                .flat_map(|s| s.refs.iter())
                .filter(|r| r.array == g.array)
                .filter_map(|r| match &r.access {
                    AccessFn::Indexed { table, .. } => {
                        let tab = program.table(*table);
                        (!tab.is_empty()).then(|| {
                            table_lines(tab, decl.dims()[0], decl.elem_size() as u64, line)
                        })
                    }
                    AccessFn::Affine(_) => None,
                })
                .sum::<u64>()
                .min(array_lines);
            lines.push(NestArrayLines {
                part,
                part_glob,
                bcast,
                indexed,
                array_lines,
            });
        }

        // Footprint at each level → fit levels.
        // Private: each node holds its thread's partitioned lines plus a
        // full copy of broadcast data; indexed table targets are shared,
        // so each node holds roughly its 1/n slice.
        // Shared: one aggregate capacity holds everything once.
        let nf_at = |lvl: usize, t: usize| -> u64 {
            let mut lines_total = 0u64;
            for la in &lines {
                let part = la.part[t][lvl];
                let add = match cfg.l2_mode {
                    L2Mode::Private => part
                        .saturating_add(la.bcast[lvl])
                        .saturating_add(la.indexed / n_threads as u64 + 1)
                        .min(la.array_lines),
                    L2Mode::Shared => part,
                };
                lines_total = lines_total.saturating_add(add);
            }
            lines_total.saturating_mul(line)
        };
        let nf_shared_at = |lvl: usize| -> u64 {
            let mut lines_total = 0u64;
            for la in &lines {
                let mut a = la.bcast[lvl].saturating_add(la.indexed);
                for t in 0..n_threads {
                    a = a.saturating_add(la.part[t][lvl]);
                }
                lines_total = lines_total.saturating_add(a.min(la.array_lines));
            }
            lines_total.saturating_mul(line)
        };
        let fit_level = |nf: &dyn Fn(usize) -> u64| -> usize {
            (0..=depth).find(|&l| nf(l) <= cap).unwrap_or(depth)
        };
        let fit_t: Vec<usize> = match cfg.l2_mode {
            L2Mode::Private => (0..n_threads)
                .map(|t| fit_level(&|l| nf_at(l, t)))
                .collect(),
            L2Mode::Shared => {
                let l = fit_level(&|l| nf_shared_at(l));
                vec![l; n_threads]
            }
        };
        // Broadcast data is evicted when the most loaded node (private)
        // or the aggregate (shared) overflows.
        let fit_b = match cfg.l2_mode {
            L2Mode::Private => {
                fit_level(&|l| (0..n_threads).map(|t| nf_at(l, t)).max().unwrap_or(0))
            }
            L2Mode::Shared => fit_t[0],
        };

        for (g, la) in groups.iter().zip(&lines) {
            let reps_of = |fits: bool| if fits { 1 } else { reps };
            let mut part = vec![0u64; n_threads];
            let mut acc_part = 0u64;
            for t in 0..n_threads {
                let lvl = fit_t[t];
                let pts = thread_walks[t].points();
                acc_part = acc_part.saturating_add(
                    pts.saturating_mul(
                        reps * g
                            .part_groups
                            .iter()
                            .map(|p| p.members.len() as u64)
                            .sum::<u64>(),
                    ),
                );
                // Consecutive iterations of the loop just outside the fit
                // level reuse whatever their spans share (a stencil's
                // overlap is retained: its reuse distance is one ℓ*-level
                // footprint, which fits by definition). Misses across
                // that loop therefore collapse to the *distinct* lines at
                // ℓ*−1, and only loops outside ℓ*−1 re-stream them. When
                // spans are disjoint `L(ℓ*−1) = n·L(ℓ*)` and this is the
                // plain re-streaming count.
                let ml = lvl.saturating_sub(1);
                part[t] = la.part[t][ml]
                    .saturating_mul(thread_walks[t].outer_mult(ml, None))
                    .saturating_mul(reps_of(lvl == 0));
            }
            let acc_bcast: u64 = (0..n_threads)
                .map(|t| thread_walks[t].points())
                .sum::<u64>()
                .saturating_mul(
                    reps * g
                        .bcast_groups
                        .iter()
                        .map(|p| p.members.len() as u64)
                        .sum::<u64>(),
                );
            let mb = fit_b.saturating_sub(1);
            let bcast = la.bcast[mb]
                .saturating_mul(global_walk.outer_mult(mb, Some(par)))
                .saturating_mul(reps_of(fit_b == 0));
            let acc_indexed: u64 = (0..n_threads)
                .map(|t| thread_walks[t].points())
                .sum::<u64>()
                .saturating_mul(reps * g.indexed.len() as u64);
            let indexed = la
                .indexed
                .saturating_mul(global_walk.outer_mult(mb, Some(par)))
                .saturating_mul(reps_of(fit_b == 0))
                .min(acc_indexed);
            let streaming = fit_t.iter().any(|&l| l > 0) || fit_b > 0;
            components.push(ComponentMisses {
                nest: ni,
                array: g.array,
                part,
                bcast,
                indexed,
                acc_part,
                acc_bcast,
                acc_indexed,
                l0_part: (0..n_threads).map(|t| la.part[t][0]).collect(),
                l0_part_glob: la.part_glob,
                l0_bcast: la.bcast[0],
                l0_idx: la.indexed,
                part_members: g
                    .part_groups
                    .iter()
                    .flat_map(|p| p.members.iter().copied())
                    .collect(),
                bcast_members: g
                    .bcast_groups
                    .iter()
                    .flat_map(|p| p.members.iter().copied())
                    .collect(),
                idx_members: g.indexed.clone(),
                streaming,
            });
        }
    }

    // ── App-level fit: when the whole working set fits, only cold misses
    // remain. Each nest's cold contribution is the footprint it adds over
    // what earlier nests already brought in (running coverage per array),
    // so a subsampled init nest fetches its sparse sample and the first
    // heavy nest fetches the rest — matching first-touch order in the
    // trace. ───────────────────────────────────────────────────────────
    // App-level footprint per array: max over nests of the level-0 lines.
    let mut app_part: HashMap<ArrayId, Vec<u64>> = HashMap::new();
    let mut app_part_glob: HashMap<ArrayId, u64> = HashMap::new();
    let mut app_bcast: HashMap<ArrayId, u64> = HashMap::new();
    for c in &components {
        let p = app_part
            .entry(c.array)
            .or_insert_with(|| vec![0; n_threads]);
        for (pt, &l0) in p.iter_mut().zip(&c.l0_part) {
            *pt = (*pt).max(l0);
        }
        let g = app_part_glob.entry(c.array).or_insert(0);
        *g = (*g).max(c.l0_part_glob);
        let b = app_bcast.entry(c.array).or_insert(0);
        *b = (*b).max(c.l0_bcast.saturating_add(c.l0_idx));
    }
    let app_fits = match cfg.l2_mode {
        L2Mode::Private => (0..n_threads).all(|t| {
            let lines_total: u64 = app_part
                .iter()
                .map(|(a, p)| p[t].saturating_add(*app_bcast.get(a).unwrap_or(&0)))
                .sum();
            lines_total.saturating_mul(line) <= cap
        }),
        L2Mode::Shared => {
            let lines_total: u64 = app_part_glob
                .iter()
                .map(|(a, g)| g.saturating_add(*app_bcast.get(a).unwrap_or(&0)))
                .sum();
            lines_total.saturating_mul(line) <= cap
        }
    };
    if app_fits {
        let mut seen_part: HashMap<ArrayId, Vec<u64>> = HashMap::new();
        let mut seen_glob: HashMap<ArrayId, u64> = HashMap::new();
        let mut seen_bcast: HashMap<ArrayId, u64> = HashMap::new();
        for c in components.iter_mut() {
            c.streaming = false;
            let seen = seen_part
                .entry(c.array)
                .or_insert_with(|| vec![0; n_threads]);
            let mut sum_t = 0u64;
            for (t, s) in seen.iter_mut().enumerate().take(n_threads) {
                let contrib = c.l0_part[t].saturating_sub(*s);
                *s = (*s).max(c.l0_part[t]);
                c.part[t] = contrib;
                sum_t = sum_t.saturating_add(contrib);
            }
            if cfg.l2_mode == L2Mode::Shared && sum_t > 0 {
                // Shared NUCA fetches each line once chip-wide: rescale
                // the per-thread split so its total is the union
                // contribution, not the halo-duplicating per-thread sum.
                let sg = seen_glob.entry(c.array).or_insert(0);
                let contrib_glob = c.l0_part_glob.saturating_sub(*sg);
                *sg = (*sg).max(c.l0_part_glob);
                for t in 0..n_threads {
                    c.part[t] = c.part[t] * contrib_glob / sum_t;
                }
            }
            let sb = seen_bcast.entry(c.array).or_insert(0);
            let l0b = c.l0_bcast.saturating_add(c.l0_idx);
            let contrib = l0b.saturating_sub(*sb);
            *sb = (*sb).max(l0b);
            // Split the cold contribution between the nest's broadcast
            // and indexed classes, favouring broadcast.
            c.bcast = contrib.min(c.l0_bcast);
            c.indexed = contrib.saturating_sub(c.bcast);
        }
    }

    // ── Aggregate: totals, per-MC traffic, hops, per-ref attribution. ──
    let mut traffic = Traffic::new(cfg.num_mcs);
    let mut per_array: HashMap<ArrayId, (u64, u64, Traffic, bool, bool)> = HashMap::new();
    let mut array_order: Vec<ArrayId> = Vec::new();
    let mut refs_out: Vec<RefEstimate> = Vec::new();
    let streaming = components.iter().any(|c| c.streaming);

    for c in &components {
        let al = layout.layout(c.array);
        let decl = program.array(c.array);
        let entry = per_array.entry(c.array).or_insert_with(|| {
            array_order.push(c.array);
            (0, 0, Traffic::new(cfg.num_mcs), false, false)
        });
        let mut comp_traffic = Traffic::new(cfg.num_mcs);
        let part_total: u64 = c.part.iter().sum();
        for (t, &m) in c.part.iter().enumerate() {
            if m == 0 {
                continue;
            }
            let node = layout.binding().node_of(t / cfg.threads_per_core);
            let requester = requester_for(al, node, t, cfg);
            route(
                &mut comp_traffic,
                m as f64,
                requester,
                al,
                Some(t),
                kind,
                mapping,
                cfg,
                app.first_touch_friendly,
            );
        }
        let global = (c.bcast + c.indexed) as f64;
        if global > 0.0 {
            route(
                &mut comp_traffic,
                global,
                Requester::Uniform,
                al,
                None,
                kind,
                mapping,
                cfg,
                app.first_touch_friendly,
            );
        }
        entry.0 += c.acc_part + c.acc_bcast + c.acc_indexed;
        entry.1 += part_total + c.bcast + c.indexed;
        entry.2.merge(&comp_traffic);
        entry.3 |= c.acc_bcast > 0;
        entry.4 |= c.acc_indexed > 0;
        traffic.merge(&comp_traffic);

        // Per-ref attribution: each class's misses split evenly over its
        // member references (they share the walk geometry).
        let classes: [RefClass; 3] = [
            (&c.part_members, c.acc_part, part_total, false, false),
            (&c.bcast_members, c.acc_bcast, c.bcast, true, false),
            (&c.idx_members, c.acc_indexed, c.indexed, true, true),
        ];
        for (members, acc, miss, broadcast, indexed) in classes {
            let n = members.len() as u64;
            if n == 0 {
                continue;
            }
            for (i, (si, ri)) in members.iter().enumerate() {
                let extra = if (i as u64) < miss % n { 1 } else { 0 };
                refs_out.push(RefEstimate {
                    nest: c.nest,
                    statement: *si,
                    reference: *ri,
                    array: decl.name().to_string(),
                    accesses: acc / n + if (i as u64) < acc % n { 1 } else { 0 },
                    predicted_offchip: miss / n + extra,
                    broadcast,
                    indexed,
                });
            }
        }
    }

    let total_accesses: u64 = per_array.values().map(|v| v.0).sum();
    let predicted_offchip: u64 = per_array.values().map(|v| v.1).sum();
    let arrays: Vec<ArrayEstimate> = array_order
        .iter()
        .map(|a| {
            let (acc, miss, tr, bc, idx) = &per_array[a];
            ArrayEstimate {
                array: program.array(*a).name().to_string(),
                accesses: *acc,
                predicted_offchip: *miss,
                avg_hops: tr.avg_hops(),
                broadcast: *bc,
                indexed: *idx,
            }
        })
        .collect();
    let total_traffic: f64 = traffic.per_mc.iter().sum();
    let mc_shares: Vec<f64> = if total_traffic > 0.0 {
        traffic.per_mc.iter().map(|m| m / total_traffic).collect()
    } else {
        vec![0.0; cfg.num_mcs]
    };
    let queue_pressure = mc_shares.iter().fold(0.0f64, |m, &s| m.max(s)) * cfg.num_mcs as f64;
    AppEstimate {
        app: program.name().to_string(),
        kind,
        total_accesses,
        predicted_offchip,
        avg_offchip_hops: traffic.avg_hops().unwrap_or(0.0),
        mc_shares,
        queue_pressure,
        streaming,
        arrays,
        refs: refs_out,
    }
}

/// `RunKind::Write`-agnostic convenience: predicts with the layout the
/// kind implies, compiled fresh (no suite cache) — used by the check
/// integration and tests. Simulation paths should prefer
/// `Suite::layout_plan` + [`estimate_app`] to share the plan object.
pub fn estimate_app_fresh(
    app: &App,
    mapping: &L2ToMcMapping,
    sim: &SimConfig,
    kind: RunKind,
) -> AppEstimate {
    let layout = hoploc_workloads::layout_for(app, mapping, sim, kind);
    let cfg = EstConfig::from_sim(sim);
    estimate_app(app, &layout, mapping, kind, &cfg)
}

/// Predicts one cell against a unified [`hoploc_noc::Placement`]: the MC
/// count and the mapping come from the same value, and the layout is
/// compiled fresh under the given approximation threshold. This is the
/// scoring entry point of the `hoploc-search` design-space optimizer —
/// the placement a candidate is scored with is byte-identical to the one
/// the verifying cycle simulation is constructed from.
pub fn estimate_placement(
    app: &App,
    placement: &hoploc_noc::Placement,
    sim: &SimConfig,
    kind: RunKind,
    approx_threshold: f64,
) -> AppEstimate {
    let sim = SimConfig {
        placement: placement.mc_placement().clone(),
        ..sim.clone()
    };
    let layout =
        hoploc_workloads::layout_with(app, placement.mapping(), &sim, kind, approx_threshold);
    let cfg = EstConfig::from_sim(&sim);
    estimate_app(app, &layout, placement.mapping(), kind, &cfg)
}

// Quiet an unused-variant lint: writes count like reads for off-chip
// line-fetch purposes (write-allocate, writebacks modelled off).
const _: RefKind = RefKind::Write;
