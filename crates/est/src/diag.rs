//! The HL10xx *predicted-performance* diagnostics: static findings about
//! what a layout plan will do to off-chip behaviour, produced without
//! running the simulator.
//!
//! | Code   | Severity | Finding |
//! |--------|----------|---------|
//! | HL1001 | warning  | a localized plan is predicted not to reduce hop distance for a traffic-significant array |
//! | HL1002 | warning  | a plan concentrates a traffic-significant array's slots on few controllers |
//! | HL1003 | note     | the working set is predicted to stream through the L2 |
//! | HL1004 | note     | the prediction involves index-table references (coarse model) |
//!
//! The HL11xx *prefetch advisories* ([`prefetch_diagnostics`]) judge a
//! *requested* prefetch mode against the same static model, so they run
//! only when `hoploc check` is invoked with `--prefetch` (warnings for a
//! knob nobody asked for would trip `--deny warnings` CI gates):
//!
//! | Code   | Severity | Finding |
//! |--------|----------|---------|
//! | HL1101 | note     | a significant share of accesses go through index tables the prefetcher cannot learn |
//! | HL1102 | warning  | the app is predicted L2-resident, so prefetching can only pollute |
//!
//! The low-level queries ([`check_array_plan`], [`array_plan_hops`],
//! [`baseline_hops`]) take a bare [`ArrayLayout`] so tests can feed
//! deliberately bad plans built with [`ArrayLayout::from_parts`] and
//! prove each code fires; [`performance_diagnostics`] is the app-level
//! pass `hoploc check` runs, which derives traffic shares from the
//! footprint model and applies the significance gate.

use hoploc_check::{Code, Diagnostic};
use hoploc_layout::{ArrayLayout, ProgramLayout};
use hoploc_noc::{L2ToMcMapping, NodeId};
use hoploc_workloads::{App, RunKind};

use crate::model::{estimate_app, EstConfig};

/// An array's predicted traffic share below which plan-quality warnings
/// stay quiet: a bad plan for 3% of the traffic is not worth a warning.
pub const TRAFFIC_SIGNIFICANCE: f64 = 0.10;

/// HL1001 fires when the plan's expected hop distance fails to undercut
/// this fraction of the uniform-interleave baseline.
pub const HOP_IMPROVEMENT_FLOOR: f64 = 0.95;

/// HL1002 fires when one controller holds at least this share of the
/// plan's slots.
pub const MC_SHARE_CEILING: f64 = 0.5;

/// Mean off-chip hop distance under uniform interleaving: every node
/// equally likely to request, every controller equally likely to serve.
pub fn baseline_hops(mapping: &L2ToMcMapping, num_nodes: usize) -> f64 {
    let mesh = mapping.mesh();
    let n_mcs = mapping.num_mcs();
    let mut sum = 0.0;
    for n in 0..num_nodes {
        for m in 0..n_mcs {
            let mc = hoploc_noc::McId(m as u16);
            sum += mesh.hop_distance(NodeId(n as u16), mapping.mc_node(mc)) as f64;
        }
    }
    sum / (num_nodes * n_mcs.max(1)) as f64
}

/// Expected hop distance of a localized plan: each thread's requests go
/// to its group's slot controllers ([`ArrayLayout::thread_mcs`]),
/// weighted per slot. `nodes[t]` is the mesh node thread `t` runs on.
/// `None` for original layouts (nothing planned; traffic interleaves at
/// [`baseline_hops`]).
pub fn array_plan_hops(al: &ArrayLayout, nodes: &[NodeId], mapping: &L2ToMcMapping) -> Option<f64> {
    let mesh = mapping.mesh();
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, &node) in nodes.iter().enumerate() {
        let mcs = al.thread_mcs(t)?;
        if mcs.is_empty() {
            continue;
        }
        let d: f64 = mcs
            .iter()
            .map(|&mc| mesh.hop_distance(node, mapping.mc_node(mc)) as f64)
            .sum::<f64>()
            / mcs.len() as f64;
        sum += d;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

/// The per-controller slot shares of a localized plan (`None` for
/// original layouts).
pub fn plan_mc_shares(al: &ArrayLayout, n_mcs: usize) -> Option<Vec<f64>> {
    let v = al.plan_view()?;
    let mut hist = vec![0.0; n_mcs];
    let mut total = 0.0;
    for slots in v.group_slots {
        for &s in slots {
            hist[(s % v.n_mcs) as usize] += 1.0;
            total += 1.0;
        }
    }
    if total == 0.0 {
        return None;
    }
    for h in &mut hist {
        *h /= total;
    }
    Some(hist)
}

/// Checks one array's localized plan against the hop and balance
/// predictions. `traffic_share` is the array's fraction of the app's
/// predicted off-chip traffic — warnings stay quiet below
/// [`TRAFFIC_SIGNIFICANCE`]. Original layouts produce nothing (there is
/// no plan to judge).
pub fn check_array_plan(
    app: &str,
    array: &str,
    al: &ArrayLayout,
    nodes: &[NodeId],
    mapping: &L2ToMcMapping,
    traffic_share: f64,
    label: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if al.is_original() || traffic_share < TRAFFIC_SIGNIFICANCE {
        return out;
    }
    let base = baseline_hops(mapping, nodes.len().max(1));
    if let Some(plan) = array_plan_hops(al, nodes, mapping) {
        if plan > HOP_IMPROVEMENT_FLOOR * base {
            out.push(
                Diagnostic::new(
                    Code::PredictedPlanIneffective,
                    app,
                    format!(
                        "localized plan is predicted to average {plan:.2} hops per \
                         off-chip request vs {base:.2} under uniform interleaving \
                         ({:.0}% of predicted traffic)",
                        traffic_share * 100.0
                    ),
                )
                .with_config(label)
                .on_array(array)
                .with_help(
                    "the slot assignment places this array's units no closer to their \
                     owning threads than default interleaving; check the cluster map \
                     and MC placement the plan was compiled against",
                ),
            );
        }
    }
    if let Some(shares) = plan_mc_shares(al, mapping.num_mcs()) {
        let (worst, share) = shares
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, &s)| (i, s))
            .unwrap_or((0, 0.0));
        if share >= MC_SHARE_CEILING {
            out.push(
                Diagnostic::new(
                    Code::PredictedMcImbalance,
                    app,
                    format!(
                        "localized plan routes {:.0}% of this array's slots to MC{worst} \
                         ({:.0}% of predicted traffic); that controller's queue is \
                         predicted to saturate",
                        share * 100.0,
                        traffic_share * 100.0
                    ),
                )
                .with_config(label)
                .on_array(array)
                .with_help(
                    "spread the group's slots across the cluster's controllers, or \
                     revisit the super-group size so slot % n_mcs covers all of them",
                ),
            );
        }
    }
    out
}

/// The app-level predicted-performance pass `hoploc check` runs: derives
/// per-array traffic shares from the footprint model, judges each
/// optimized array's plan, and reports capacity streaming and
/// approximation caveats.
pub fn performance_diagnostics(
    app: &App,
    layout: &ProgramLayout,
    mapping: &L2ToMcMapping,
    cfg: &EstConfig,
    label: &str,
) -> Vec<Diagnostic> {
    let est = estimate_app(app, layout, mapping, RunKind::Optimized, cfg);
    let name = app.name();
    let mut out = Vec::new();
    let total: f64 = est
        .arrays
        .iter()
        .map(|a| a.predicted_offchip as f64)
        .sum::<f64>()
        .max(1.0);
    let binding = layout.binding();
    let nodes: Vec<NodeId> = (0..binding.len() * cfg.threads_per_core)
        .map(|t| binding.node_of(t / cfg.threads_per_core))
        .collect();
    for (i, decl) in app.program.arrays().iter().enumerate() {
        let Some(a) = est.arrays.iter().find(|a| a.array == decl.name()) else {
            continue;
        };
        let share = a.predicted_offchip as f64 / total;
        out.extend(check_array_plan(
            name,
            decl.name(),
            layout.layout(hoploc_affine::ArrayId(i)),
            &nodes,
            mapping,
            share,
            label,
        ));
    }
    if est.streaming {
        out.push(
            Diagnostic::new(
                Code::PredictedCapacityStreaming,
                name,
                format!(
                    "predicted working set exceeds L2 capacity: {:.1}% of accesses \
                     go off-chip; placement, not caching, governs performance",
                    est.offchip_fraction() * 100.0
                ),
            )
            .with_config(label),
        );
    }
    if est.arrays.iter().any(|a| a.indexed) {
        let names: Vec<&str> = est
            .arrays
            .iter()
            .filter(|a| a.indexed)
            .map(|a| a.array.as_str())
            .collect();
        out.push(
            Diagnostic::new(
                Code::EstimateApproximate,
                name,
                format!(
                    "prediction uses the coarse index-table model for: {}",
                    names.join(", ")
                ),
            )
            .with_config(label),
        );
    }
    out
}

/// HL1102 fires when the predicted off-chip fraction sits at or below
/// this — an app whose demand stream the L2 already absorbs has nothing
/// for a prefetcher to cover, so every speculative fill is pollution.
pub const L2_RESIDENT_CEILING: f64 = 0.01;

/// The HL11xx prefetch advisories: judges a *requested* prefetch engine
/// against the static model. Opt-in — `hoploc check` runs this only when
/// invoked with `--prefetch <mode>` (`mode_name` is that mode's wire
/// name, echoed into the findings), because HL1102 is a warning and must
/// not trip `--deny warnings` gates for users who never asked about
/// prefetching.
pub fn prefetch_diagnostics(
    app: &App,
    layout: &ProgramLayout,
    mapping: &L2ToMcMapping,
    cfg: &EstConfig,
    label: &str,
    mode_name: &str,
) -> Vec<Diagnostic> {
    let est = estimate_app(app, layout, mapping, RunKind::Optimized, cfg);
    let name = app.name();
    let mut out = Vec::new();
    let indexed_share = 1.0 - est.prefetchability();
    if indexed_share >= TRAFFIC_SIGNIFICANCE {
        let names: Vec<&str> = est
            .arrays
            .iter()
            .filter(|a| a.indexed)
            .map(|a| a.array.as_str())
            .collect();
        out.push(
            Diagnostic::new(
                Code::PrefetchUselessOnIndexed,
                name,
                format!(
                    "{:.0}% of accesses go through index tables ({}) whose \
                     address streams carry no stride; the {mode_name} \
                     prefetcher is predicted useless for that traffic",
                    indexed_share * 100.0,
                    names.join(", "),
                ),
            )
            .with_config(label)
            .with_help(
                "indexed traffic trains nothing and gains nothing; expect \
                 coverage no higher than the app's affine access share",
            ),
        );
    }
    if !est.streaming && est.offchip_fraction() <= L2_RESIDENT_CEILING {
        out.push(
            Diagnostic::new(
                Code::PrefetchPredictedHarmful,
                name,
                format!(
                    "predicted L2-resident ({:.2}% of accesses off-chip): the \
                     {mode_name} prefetcher has nothing to cover and its \
                     fills can only evict live lines",
                    est.offchip_fraction() * 100.0,
                ),
            )
            .with_config(label)
            .with_help(
                "run this app with --prefetch off, or gate on the off-chip \
                 predictor (--prefetch gated) so the throttle idles the engine",
            ),
        );
    }
    out
}
