//! Cross-validation of the static estimator against the cycle simulator:
//! the full app × kind × config matrix, predicted and simulated side by
//! side, summarized by Spearman rank correlation and a self-timed
//! speedup.
//!
//! The estimator's contract is *rank fidelity at negligible cost*: it
//! must order cells the way the simulator does (ρ ≥ 0.8 gates CI) while
//! running orders of magnitude faster (≥ 100×, also asserted from the
//! report). Both passes share the same compiled layout plans — prewarmed
//! outside both timers — so the comparison measures the models, not
//! layout compilation. Trace generation stays inside the simulator's
//! timer: avoiding it is precisely the estimator's advantage.

use std::time::Instant;

use hoploc_harness::{kind_name, parallel_map, RunSpec, Suite};
use hoploc_layout::{Granularity, L2Mode};
use hoploc_noc::L2ToMcMapping;
use hoploc_sim::SimConfig;
use hoploc_workloads::{App, RunKind};

use crate::json::{esc, num};
use crate::model::{estimate_app, EstConfig};
use crate::rank::spearman;

/// The four comparison sides every figure sweeps.
pub const KINDS: [RunKind; 4] = [
    RunKind::Baseline,
    RunKind::Optimized,
    RunKind::FirstTouch,
    RunKind::Optimal,
];

/// The standard validation configs: the capacity-scaled Table 1 machine
/// crossed over L2 organization × interleaving granularity — the same
/// grid `hoploc check` verifies layouts under.
pub fn standard_configs() -> Vec<(String, SimConfig)> {
    let mut out = Vec::new();
    for (mode, mode_name) in [(L2Mode::Private, "private"), (L2Mode::Shared, "shared")] {
        for (gran, gran_name) in [
            (Granularity::CacheLine, "cacheline"),
            (Granularity::Page, "page"),
        ] {
            let mut sim = SimConfig::scaled();
            sim.l2_mode = mode;
            sim.granularity = gran;
            out.push((format!("{mode_name}/{gran_name}"), sim));
        }
    }
    out
}

/// One matrix cell: prediction next to ground truth.
#[derive(Clone, Debug)]
pub struct XvalCell {
    /// Application name.
    pub app: String,
    /// Run kind.
    pub kind: RunKind,
    /// Config label (`private/cacheline` …).
    pub config: String,
    /// Predicted off-chip fraction.
    pub est_offchip_fraction: f64,
    /// Simulated off-chip fraction.
    pub sim_offchip_fraction: f64,
    /// Predicted mean off-chip hops.
    pub est_hops: f64,
    /// Simulated mean off-chip hops.
    pub sim_hops: f64,
    /// Predicted queue pressure (max MC share × n_mcs).
    pub est_queue_pressure: f64,
    /// Simulated queue pressure.
    pub sim_queue_pressure: f64,
}

/// The full cross-validation result.
#[derive(Clone, Debug)]
pub struct XvalReport {
    /// Every (app, kind, config) cell.
    pub cells: Vec<XvalCell>,
    /// Spearman ρ between predicted and simulated off-chip fraction —
    /// the gated headline number.
    pub spearman_offchip: f64,
    /// Spearman ρ for mean off-chip hops (informational).
    pub spearman_hops: f64,
    /// Spearman ρ for queue pressure (informational).
    pub spearman_queue: f64,
    /// Wall-clock nanoseconds the estimator pass took.
    pub est_nanos: u64,
    /// Wall-clock nanoseconds the simulator pass took (including trace
    /// generation, which the estimator does not need).
    pub sim_nanos: u64,
}

impl XvalReport {
    /// Simulator time over estimator time — the self-timed speedup the
    /// acceptance gate checks (≥ 100×).
    pub fn speedup(&self) -> f64 {
        if self.est_nanos == 0 {
            return f64::INFINITY;
        }
        self.sim_nanos as f64 / self.est_nanos as f64
    }
}

/// Runs the full matrix both ways and correlates. `jobs` bounds worker
/// threads for both passes symmetrically, keeping the speedup fair.
pub fn cross_validate(apps: &[App], jobs: usize) -> XvalReport {
    let mut cells = Vec::new();
    let mut est_nanos = 0u64;
    let mut sim_nanos = 0u64;
    for (label, sim) in standard_configs() {
        let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
        let suite = Suite::new(apps.to_vec(), mapping, sim.clone());
        let specs: Vec<RunSpec> = (0..apps.len())
            .flat_map(|a| KINDS.iter().map(move |&kind| RunSpec { app: a, kind }))
            .collect();
        // Both sides consume the same compiled plans; compiling them here
        // keeps layout cost out of both timers.
        for s in &specs {
            let _ = suite.layout_plan(s.app, s.kind);
        }
        let cfg = EstConfig::from_sim(&sim);

        let t = Instant::now();
        let ests = parallel_map(&specs, jobs, |s| {
            let plan = suite.layout_plan(s.app, s.kind);
            estimate_app(&apps[s.app], &plan, suite.mapping(), s.kind, &cfg)
        });
        est_nanos += t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let stats = parallel_map(&specs, jobs, |s| suite.run_one(*s));
        sim_nanos += t.elapsed().as_nanos() as u64;

        let n_mcs = sim.num_mcs();
        for ((spec, est), st) in specs.iter().zip(&ests).zip(&stats) {
            let totals: Vec<u64> = (0..n_mcs)
                .map(|m| st.node_mc_requests.iter().map(|row| row[m]).sum())
                .collect();
            let all: u64 = totals.iter().sum();
            let sim_qp = if all > 0 {
                totals
                    .iter()
                    .map(|&t| t as f64 / all as f64)
                    .fold(0.0, f64::max)
                    * n_mcs as f64
            } else {
                0.0
            };
            cells.push(XvalCell {
                app: apps[spec.app].name().to_string(),
                kind: spec.kind,
                config: label.clone(),
                est_offchip_fraction: est.offchip_fraction(),
                sim_offchip_fraction: st.offchip_fraction(),
                est_hops: est.avg_offchip_hops,
                sim_hops: st.net.off_chip.avg_hops(),
                est_queue_pressure: est.queue_pressure,
                sim_queue_pressure: sim_qp,
            });
        }
    }
    let pick = |f: fn(&XvalCell) -> (f64, f64)| -> f64 {
        let (xs, ys): (Vec<f64>, Vec<f64>) = cells.iter().map(f).unzip();
        spearman(&xs, &ys)
    };
    XvalReport {
        spearman_offchip: pick(|c| (c.est_offchip_fraction, c.sim_offchip_fraction)),
        spearman_hops: pick(|c| (c.est_hops, c.sim_hops)),
        spearman_queue: pick(|c| (c.est_queue_pressure, c.sim_queue_pressure)),
        est_nanos,
        sim_nanos,
        cells,
    }
}

/// Renders the report as JSON (the CI artifact and `--json` output).
pub fn xval_json(r: &XvalReport) -> String {
    let mut out = String::from("{\n  \"cells\": [\n");
    for (i, c) in r.cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"kind\": \"{}\", \"config\": \"{}\", \
             \"est_offchip_fraction\": {}, \"sim_offchip_fraction\": {}, \
             \"est_hops\": {}, \"sim_hops\": {}, \
             \"est_queue_pressure\": {}, \"sim_queue_pressure\": {}}}{}\n",
            esc(&c.app),
            kind_name(c.kind),
            esc(&c.config),
            num(c.est_offchip_fraction),
            num(c.sim_offchip_fraction),
            num(c.est_hops),
            num(c.sim_hops),
            num(c.est_queue_pressure),
            num(c.sim_queue_pressure),
            if i + 1 < r.cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"spearman_offchip\": {},\n  \"spearman_hops\": {},\n  \
         \"spearman_queue\": {},\n  \"est_nanos\": {},\n  \"sim_nanos\": {},\n  \
         \"speedup\": {}\n}}\n",
        num(r.spearman_offchip),
        num(r.spearman_hops),
        num(r.spearman_queue),
        r.est_nanos,
        r.sim_nanos,
        num(r.speedup()),
    ));
    out
}

/// Renders the report as an aligned text table plus the summary lines.
pub fn render_text(r: &XvalReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<11} {:<18} {:>9} {:>9} {:>8} {:>8} {:>7} {:>7}\n",
        "app", "kind", "config", "est-off", "sim-off", "est-hop", "sim-hop", "est-qp", "sim-qp"
    ));
    for c in &r.cells {
        out.push_str(&format!(
            "{:<12} {:<11} {:<18} {:>9.4} {:>9.4} {:>8.2} {:>8.2} {:>7.2} {:>7.2}\n",
            c.app,
            kind_name(c.kind),
            c.config,
            c.est_offchip_fraction,
            c.sim_offchip_fraction,
            c.est_hops,
            c.sim_hops,
            c.est_queue_pressure,
            c.sim_queue_pressure,
        ));
    }
    out.push_str(&format!(
        "\nspearman(offchip) = {:.4}\nspearman(hops)    = {:.4}\n\
         spearman(queue)   = {:.4}\nestimator {:.1}us vs simulator {:.1}ms: {:.0}x faster\n",
        r.spearman_offchip,
        r.spearman_hops,
        r.spearman_queue,
        r.est_nanos as f64 / 1e3,
        r.sim_nanos as f64 / 1e6,
        r.speedup(),
    ));
    out
}
