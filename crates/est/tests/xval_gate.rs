//! The cross-validation gate at test scale: the estimator must rank the
//! full app × kind × config matrix the way the cycle simulator does
//! (Spearman ρ ≥ 0.8 on off-chip fraction) while being much faster.
//! CI additionally runs the same gate at bench scale through
//! `hoploc est all --json` with the ≥100× speedup requirement.

use hoploc_est::{cross_validate, spearman, KINDS};
use hoploc_harness::default_jobs;
use hoploc_workloads::{all_apps, Scale};

#[test]
fn estimator_ranks_the_test_matrix_like_the_simulator() {
    let apps = all_apps(Scale::Test);
    let report = cross_validate(&apps, default_jobs());
    assert_eq!(
        report.cells.len(),
        apps.len() * KINDS.len() * 4,
        "every app × kind × config cell must be present"
    );
    assert!(
        report.spearman_offchip >= 0.8,
        "off-chip rank correlation too weak: rho = {:.4}",
        report.spearman_offchip
    );
    // Hops and queue pressure are informational, but they must at least
    // rank in the right direction.
    assert!(
        report.spearman_hops > 0.0 && report.spearman_queue > 0.0,
        "hop/queue ranks inverted: {:.4} / {:.4}",
        report.spearman_hops,
        report.spearman_queue
    );
    // Even unoptimized and at toy scale the static pass must win clearly;
    // the release-build bench-scale CI gate demands ≥100×.
    assert!(
        report.speedup() > 5.0,
        "estimator not meaningfully faster: {:.1}x",
        report.speedup()
    );
    // The gated number is a rank statistic: monotonically rescaling the
    // estimates must reproduce it bit-for-bit from the raw cells.
    let est: Vec<f64> = report
        .cells
        .iter()
        .map(|c| c.est_offchip_fraction)
        .collect();
    let sim: Vec<f64> = report
        .cells
        .iter()
        .map(|c| c.sim_offchip_fraction)
        .collect();
    let scaled: Vec<f64> = est.iter().map(|x| 100.0 * x + 3.0).collect();
    assert_eq!(
        spearman(&scaled, &sim),
        report.spearman_offchip,
        "report rho must equal the rank statistic over its own cells"
    );
}
