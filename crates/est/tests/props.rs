//! Property tests for the estimator's structural guarantees: predicted
//! off-chip demand is non-increasing in L2 capacity, Spearman rank
//! correlation is invariant under monotone transforms, and on a
//! degenerate fits-in-L2 configuration the prediction agrees with the
//! cycle simulator *exactly* — access for access, miss for miss.

use hoploc_affine::{AffineAccess, ArrayDecl, ArrayRef, Loop, LoopNest, Program, Statement};
use hoploc_est::{estimate_app, spearman, EstConfig, KINDS};
use hoploc_harness::{RunSpec, Suite};
use hoploc_layout::{AppProfile, Granularity, L2Mode};
use hoploc_noc::L2ToMcMapping;
use hoploc_ptest::{run_cases, SmallRng};
use hoploc_sim::SimConfig;
use hoploc_workloads::{all_apps, layout_for, App, RunKind, Scale, TraceGen};

fn sample_sim(rng: &mut SmallRng) -> SimConfig {
    let mut sim = SimConfig::scaled();
    if rng.flip() {
        sim.l2_mode = L2Mode::Shared;
    }
    if rng.flip() {
        sim.granularity = Granularity::Page;
    }
    sim
}

/// Growing the L2 can only retire reuse intervals, never create new
/// misses: the predicted off-chip line count must be non-increasing as
/// capacity doubles, for every app, kind, and machine shape. The model
/// guarantees this through the `L(ℓ) ≤ n_ℓ · L(ℓ+1)` recurrence, and
/// this test is the reason that invariant exists.
#[test]
fn predicted_offchip_is_monotone_in_l2_capacity() {
    let apps = all_apps(Scale::Test);
    run_cases("est.monotone", 60, |rng| {
        let app = &apps[rng.usize_in(0..apps.len())];
        let kind = KINDS[rng.usize_in(0..KINDS.len())];
        let sim = sample_sim(rng);
        let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
        // One fixed plan; only the estimator's capacity knob moves, so
        // any non-monotonicity is the model's fault, not the planner's.
        let layout = layout_for(app, &mapping, &sim, kind);
        let mut cfg = EstConfig::from_sim(&sim);
        cfg.l2_bytes = 1 << rng.usize_in(9..13);
        let mut prev = u64::MAX;
        for _ in 0..10 {
            let e = estimate_app(app, &layout, &mapping, kind, &cfg);
            assert!(
                e.predicted_offchip <= prev,
                "{} {:?} at l2={} predicts {} off-chip lines, more than {} at half \
                 the capacity",
                app.name(),
                kind,
                cfg.l2_bytes,
                e.predicted_offchip,
                prev
            );
            prev = e.predicted_offchip;
            cfg.l2_bytes *= 2;
        }
    });
}

/// Spearman correlates *ranks*, so any strictly increasing transform of
/// either side — rescaling, offset, nonlinear squash — must leave ρ
/// bit-identical. This is what makes the 0.8 gate meaningful: the
/// estimator is judged on ordering design points, not on matching the
/// simulator's absolute numbers.
#[test]
fn spearman_is_invariant_under_monotone_transforms() {
    run_cases("est.rank.invariance", 200, |rng| {
        let n = rng.usize_in(3..24);
        // Coarse values so ties occur and their handling is exercised.
        let a: Vec<f64> = (0..n).map(|_| rng.u64_below(40) as f64 / 4.0).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.u64_below(40) as f64 / 4.0).collect();
        let rho = spearman(&a, &b);
        assert!((-1.0..=1.0).contains(&rho), "rho out of range: {rho}");
        let ta: Vec<f64> = a.iter().map(|x| 3.0 * x + 7.0).collect();
        let tb: Vec<f64> = b.iter().map(|x| (x / 10.0).atan()).collect();
        assert_eq!(spearman(&ta, &b), rho, "affine transform changed rho");
        assert_eq!(spearman(&a, &tb), rho, "nonlinear transform changed rho");
        assert_eq!(spearman(&ta, &tb), rho, "joint transform changed rho");
    });
}

/// A 64×64 f64 array is exactly 128 lines × 256 B = 32 KiB — precisely
/// one scaled private L2. Walked once with unit stride it cold-misses
/// every line exactly once and never again, a case where the footprint
/// model has no slack to hide in.
fn fits_exactly_app() -> App {
    let mut p = Program::new("fits64");
    let a = p.add_array(ArrayDecl::new("A", vec![64, 64], 8));
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, 64), Loop::constant(0, 64)],
        0,
        vec![Statement::new(
            vec![ArrayRef::read(a, AffineAccess::identity(2))],
            1,
        )],
        1,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 1.0,
            sharing_fraction: 0.0,
        },
        // No replay, no subsampling, unit stride: the walk is the nest.
        gen: TraceGen::default(),
        first_touch_friendly: false,
        mlp: 1,
    }
}

/// On the degenerate configuration the estimator must agree with the
/// cycle simulator *exactly*: same access count, and off-chip lines equal
/// to the array's 128 cold misses on both sides. "Rank-faithful, not
/// cycle-accurate" is the model's license to diverge under pressure, not
/// when there is none.
#[test]
fn degenerate_fit_in_l2_agrees_exactly_with_the_simulator() {
    let sim = SimConfig::scaled();
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
    let suite = Suite::new(vec![fits_exactly_app()], mapping, sim.clone());
    for kind in [RunKind::Baseline, RunKind::FirstTouch] {
        let plan = suite.layout_plan(0, kind);
        let cfg = EstConfig::from_sim(&sim);
        let est = estimate_app(&suite.apps()[0], &plan, suite.mapping(), kind, &cfg);
        let stats = suite.run_one(RunSpec { app: 0, kind });
        assert_eq!(
            est.total_accesses, stats.total_accesses,
            "{kind:?}: the estimator must mirror the trace volume exactly"
        );
        assert_eq!(
            (est.predicted_offchip, stats.offchip_accesses),
            (128, 128),
            "{kind:?}: both sides must see exactly the 128 cold line fetches"
        );
        assert!(!est.streaming, "a fits-in-L2 app must not be streaming");
    }
}
