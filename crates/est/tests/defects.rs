//! Injected-defect tests for the HL10xx predicted-performance
//! diagnostics: each code is proven to fire by constructing the specific
//! defect it exists to catch — a plan no closer than interleaving
//! (HL1001), a plan piled onto one controller (HL1002), a working set
//! that streams (HL1003), an index-table prediction (HL1004) — and the
//! bundled suite is pinned warning-free so `--deny warnings` stays green.

use hoploc_affine::{
    AffineAccess, AffineExpr, ArrayDecl, ArrayRef, IMat, Loop, LoopNest, Program, Statement,
};
use hoploc_check::{Code, Severity};
use hoploc_est::{
    check_array_plan, performance_diagnostics, prefetch_diagnostics, standard_configs, EstConfig,
};
use hoploc_layout::{AppProfile, ArrayLayout};
use hoploc_noc::{L2ToMcMapping, NodeId};
use hoploc_sim::SimConfig;
use hoploc_workloads::{all_apps, layout_for, App, Scale, TraceGen};

fn machine() -> (SimConfig, L2ToMcMapping, Vec<NodeId>) {
    let sim = SimConfig::scaled();
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
    let nodes: Vec<NodeId> = (0..sim.num_nodes()).map(|n| NodeId(n as u16)).collect();
    (sim, mapping, nodes)
}

/// A hand-built localized plan: one group per thread, each group owning
/// the slots `chooser` picks within a super-group of `threads × n_mcs`
/// interleave units.
fn plan_with_slots(
    mapping: &L2ToMcMapping,
    threads: usize,
    chooser: impl Fn(usize, u32) -> Vec<u32>,
) -> (ArrayDecl, ArrayLayout) {
    let n_mcs = mapping.num_mcs() as u32;
    let decl = ArrayDecl::new("W", vec![64, 64], 8);
    let thread_group: Vec<u32> = (0..threads as u32).collect();
    let group_slots: Vec<Vec<u32>> = (0..threads).map(|t| chooser(t, n_mcs)).collect();
    let al = ArrayLayout::from_parts(
        &decl,
        IMat::identity(2),
        256,
        thread_group,
        group_slots,
        threads as u32 * n_mcs,
        n_mcs,
    );
    (decl, al)
}

/// HL1001: a plan whose groups own one slot on *every* controller puts
/// each thread exactly at the uniform-interleave hop distance — paying
/// the localization machinery for zero hop improvement.
#[test]
fn hl1001_fires_when_the_plan_is_no_closer_than_interleaving() {
    let (_, mapping, nodes) = machine();
    let (_, al) = plan_with_slots(&mapping, nodes.len(), |t, n_mcs| {
        (0..n_mcs).map(|m| t as u32 * n_mcs + m).collect()
    });
    let ds = check_array_plan("toy", "W", &al, &nodes, &mapping, 1.0, "inj");
    assert!(
        ds.iter().any(|d| d.code == Code::PredictedPlanIneffective),
        "HL1001 must fire on an everywhere-plan: {ds:?}"
    );
    // Slots cover every controller evenly, so no imbalance finding.
    assert!(
        ds.iter().all(|d| d.code != Code::PredictedMcImbalance),
        "balanced slots must not draw HL1002: {ds:?}"
    );
}

/// HL1002: every group's slots ≡ 0 (mod n_mcs) — the whole array lands
/// on controller 0, whose queue the model predicts will saturate.
#[test]
fn hl1002_fires_when_slots_pile_onto_one_controller() {
    let (_, mapping, nodes) = machine();
    let (_, al) = plan_with_slots(&mapping, nodes.len(), |t, n_mcs| vec![t as u32 * n_mcs]);
    let ds = check_array_plan("toy", "W", &al, &nodes, &mapping, 1.0, "inj");
    assert!(
        ds.iter().any(|d| d.code == Code::PredictedMcImbalance),
        "HL1002 must fire when all slots hit MC0: {ds:?}"
    );
}

/// Warnings stay quiet below the traffic-significance floor: the same
/// piled-up plan draws nothing when the array carries 3% of the traffic.
#[test]
fn insignificant_arrays_draw_no_plan_warnings() {
    let (_, mapping, nodes) = machine();
    let (_, al) = plan_with_slots(&mapping, nodes.len(), |t, n_mcs| vec![t as u32 * n_mcs]);
    let ds = check_array_plan("toy", "W", &al, &nodes, &mapping, 0.03, "inj");
    assert!(
        ds.is_empty(),
        "3% of traffic is not worth a warning: {ds:?}"
    );
}

/// HL1003: a 2048×2048 f64 array is 32 MiB against a 32 KiB L2 — the
/// working set streams, and the app-level pass must say so.
#[test]
fn hl1003_fires_on_a_streaming_working_set() {
    let mut p = Program::new("bigstream");
    let a = p.add_array(ArrayDecl::new("G", vec![2048, 2048], 8));
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, 2048), Loop::constant(0, 2048)],
        0,
        vec![Statement::new(
            vec![ArrayRef::read(a, AffineAccess::identity(2))],
            1,
        )],
        1,
    ));
    let app = App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 20.0,
            sharing_fraction: 0.0,
        },
        gen: TraceGen::default(),
        first_touch_friendly: false,
        mlp: 1,
    };
    let (sim, mapping, _) = machine();
    let layout = layout_for(&app, &mapping, &sim, hoploc_workloads::RunKind::Optimized);
    let cfg = EstConfig::from_sim(&sim);
    let ds = performance_diagnostics(&app, &layout, &mapping, &cfg, "inj");
    assert!(
        ds.iter()
            .any(|d| d.code == Code::PredictedCapacityStreaming),
        "HL1003 must fire on a 32 MiB working set: {ds:?}"
    );
}

/// HL1004: minimd's neighbor lists go through index tables, so its
/// prediction must carry the coarse-model caveat.
#[test]
fn hl1004_fires_on_index_table_predictions() {
    let apps = all_apps(Scale::Test);
    let app = apps
        .iter()
        .find(|a| a.name() == "minimd")
        .expect("minimd is bundled");
    let (sim, mapping, _) = machine();
    let layout = layout_for(app, &mapping, &sim, hoploc_workloads::RunKind::Optimized);
    let cfg = EstConfig::from_sim(&sim);
    let ds = performance_diagnostics(app, &layout, &mapping, &cfg, "inj");
    let caveat = ds
        .iter()
        .find(|d| d.code == Code::EstimateApproximate)
        .expect("HL1004 must fire for an index-table app");
    assert!(
        caveat.message.contains("index-table"),
        "caveat must name the model: {}",
        caveat.message
    );
}

/// Wraps a program in an [`App`] with a neutral profile for the
/// prefetch-advisory tests.
fn toy_app(p: Program) -> App {
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 2.0,
            sharing_fraction: 0.0,
        },
        gen: TraceGen::default(),
        first_touch_friendly: false,
        mlp: 1,
    }
}

/// HL1101: an app whose only traffic goes through an index table gives
/// the stride/stream engines nothing to learn — the advisory must say so,
/// as a note (useless, not harmful).
#[test]
fn hl1101_fires_when_indexed_accesses_dominate() {
    let n = 4096i64;
    let mut p = Program::new("tabled");
    let x = p.add_array(ArrayDecl::new("X", vec![n], 8));
    let t = p.add_table((0..n).collect());
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, n)],
        0,
        vec![Statement::new(
            vec![ArrayRef::indexed_read(x, t, AffineExpr::var(1, 0))],
            1,
        )],
        1,
    ));
    let app = toy_app(p);
    let (sim, mapping, _) = machine();
    let layout = layout_for(&app, &mapping, &sim, hoploc_workloads::RunKind::Optimized);
    let cfg = EstConfig::from_sim(&sim);
    let ds = prefetch_diagnostics(&app, &layout, &mapping, &cfg, "inj", "stride");
    let d = ds
        .iter()
        .find(|d| d.code == Code::PrefetchUselessOnIndexed)
        .expect("HL1101 must fire on all-indexed traffic");
    assert_eq!(d.severity(), Severity::Note);
    assert!(d.message.contains("stride"), "{}", d.message);
    assert!(d.message.contains("X"), "{}", d.message);
}

/// HL1102: a working set that fits the L2 with a long-running reuse loop
/// is predicted resident — prefetching can only pollute, which is worth a
/// warning. The same shape at streaming size must stay quiet.
#[test]
fn hl1102_fires_when_the_app_is_predicted_l2_resident() {
    // `rereads` same-element reads per iteration: the cold-miss lines
    // amortize over that much reuse, driving the off-chip fraction down.
    let resident = |dim: i64, rereads: usize| {
        let mut p = Program::new("tiny");
        let a = p.add_array(ArrayDecl::new("A", vec![dim, dim], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, dim), Loop::constant(0, dim)],
            0,
            vec![Statement::new(
                vec![ArrayRef::read(a, AffineAccess::identity(2)); rereads],
                1,
            )],
            1,
        ));
        toy_app(p)
    };
    let (sim, mapping, _) = machine();
    let cfg = EstConfig::from_sim(&sim);
    let app = resident(16, 16);
    let layout = layout_for(&app, &mapping, &sim, hoploc_workloads::RunKind::Optimized);
    let ds = prefetch_diagnostics(&app, &layout, &mapping, &cfg, "inj", "stream");
    let d = ds
        .iter()
        .find(|d| d.code == Code::PrefetchPredictedHarmful)
        .expect("HL1102 must fire on a resident working set");
    assert_eq!(d.severity(), Severity::Warning);
    assert!(d.message.contains("stream"), "{}", d.message);

    // A 2048×2048 sweep streams: no resident-pollution warning.
    let big = resident(2048, 16);
    let layout = layout_for(&big, &mapping, &sim, hoploc_workloads::RunKind::Optimized);
    let ds = prefetch_diagnostics(&big, &layout, &mapping, &cfg, "inj", "stream");
    assert!(
        ds.iter().all(|d| d.code != Code::PrefetchPredictedHarmful),
        "a streaming working set is exactly what prefetching is for: {ds:?}"
    );
}

/// The bundled 13 applications, checked across the full standard config
/// grid, must draw no predicted-performance *warnings* — this is what
/// keeps `hoploc check all --deny warnings` (and CI) green with the
/// HL10xx pass wired in. Notes (streaming, approximation) are expected.
#[test]
fn bundled_suite_draws_no_predicted_performance_warnings() {
    for (label, sim) in standard_configs() {
        let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
        let cfg = EstConfig::from_sim(&sim);
        for app in all_apps(Scale::Test) {
            let layout = layout_for(&app, &mapping, &sim, hoploc_workloads::RunKind::Optimized);
            for d in performance_diagnostics(&app, &layout, &mapping, &cfg, &label) {
                assert!(
                    d.severity() != Severity::Warning && d.severity() != Severity::Error,
                    "{} under {label}: unexpected {} {:?}: {}",
                    app.name(),
                    d.severity().name(),
                    d.code,
                    d.message
                );
            }
        }
    }
}
