//! `hoploc` — command-line driver for the PLDI'15 reproduction.
//!
//! ```text
//! hoploc apps                      list the modelled applications
//! hoploc compile <app>             run the layout pass, print coverage + code
//! hoploc check <app|all>           statically verify layouts, races, bounds
//! hoploc run <app> [options]       simulate baseline vs optimized
//! hoploc sweep [options]           run the whole suite, one row per app
//! hoploc trace <app> [options]     simulate with full request-lifecycle
//!                                  tracing; write Chrome-trace JSON
//!                                  (Perfetto-loadable), a metrics snapshot,
//!                                  and a per-link heatmap per configuration
//! hoploc trace-validate <file...>  schema-check Chrome-trace JSON files
//! hoploc faults <app> [options]    simulate under a deterministic fault
//!                                  plan (link latency windows, DRAM bank
//!                                  stalls/transient errors with bounded
//!                                  retry, whole-MC outages with
//!                                  re-homing) and report the degradation
//!
//! `check` proves every layout recipe injective and in-bounds, re-derives
//! the dependence verdicts behind each nest's parallel dimension, and
//! lints accesses against the declared array bounds — over all four
//! layout configurations ({private, shared} × {cacheline, page}) — and
//! reports structured `HLxxxx` diagnostics. Exit status is nonzero on
//! errors (or on warnings too, under `--deny warnings`).
//!
//! options:
//!   --page | --cacheline           interleaving granularity (default cacheline)
//!   --shared                       shared SNUCA L2 instead of private L2s
//!   --m2                           use the M2 (halves, k=2) mapping
//!   --first-touch                  compare against first-touch instead of baseline
//!   --optimal                      run the Section-2 optimal scheme instead
//!   --threads <n>                  threads per core (default 1)
//!   --scale <test|bench>           problem size (default bench)
//!   --jobs <n>                     worker threads for the suite sweep
//!                                  (default: available parallelism)
//!   --json <path|->                also write a machine-readable JSON
//!                                  summary of every run (- for stdout)
//!   --deny warnings                (check) treat warnings as fatal
//!   --config <kind|all>            (trace) which run kind(s) to trace:
//!                                  baseline, optimized, first-touch,
//!                                  optimal, or all (default optimized)
//!   --out <dir>                    (trace) output directory (default traces)
//!   --epoch <cycles>               (trace) windowed-series epoch width
//!   --span-cap <n>                 (trace) record spans for the first n
//!                                  requests only (0 = unlimited)
//!   --plan <seed|file>             (faults) a u64 seed for generated
//!                                  moderate-intensity faults, or a path
//!                                  to a fault-plan text file (default
//!                                  seed 0); same plan, same run, same
//!                                  bytes — always
//! ```

use hoploc::affine::parallelization_is_legal;
use hoploc::check::{
    check_layout, check_program, count, render_json, render_text, should_fail, CheckConfig,
};
use hoploc::fault::{FaultPlan, FaultRates};
use hoploc::harness::{
    default_jobs, fault_topo, kind_name, parallel_map, render_table, to_json, RunRecord, RunSpec,
    Suite,
};
use hoploc::layout::{
    codegen, determine_data_to_core, optimize_program, Granularity, L2Mode, PassConfig,
};
use hoploc::noc::{L2ToMcMapping, McPlacement};
use hoploc::obs::{validate_chrome_trace, ObsConfig};
use hoploc::sim::{Improvement, SimConfig};
use hoploc::workloads::{all_apps, layout_for, App, RunKind, Scale};
use std::process::ExitCode;

struct Options {
    granularity: Granularity,
    l2_mode: L2Mode,
    m2: bool,
    first_touch: bool,
    optimal: bool,
    threads: usize,
    scale: Scale,
    jobs: usize,
    json: Option<String>,
    deny_warnings: bool,
    config: String,
    out: String,
    epoch: u64,
    span_cap: u64,
    plan: Option<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            granularity: Granularity::CacheLine,
            l2_mode: L2Mode::Private,
            m2: false,
            first_touch: false,
            optimal: false,
            threads: 1,
            scale: Scale::Bench,
            jobs: default_jobs(),
            json: None,
            deny_warnings: false,
            config: "optimized".to_string(),
            out: "traces".to_string(),
            epoch: ObsConfig::default().epoch_cycles,
            span_cap: 0,
            plan: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--page" => o.granularity = Granularity::Page,
                "--cacheline" => o.granularity = Granularity::CacheLine,
                "--shared" => o.l2_mode = L2Mode::Shared,
                "--m2" => o.m2 = true,
                "--first-touch" => o.first_touch = true,
                "--optimal" => o.optimal = true,
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    o.threads = v.parse().map_err(|_| format!("bad thread count {v}"))?;
                }
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    o.jobs = v.parse().map_err(|_| format!("bad job count {v}"))?;
                    if o.jobs == 0 {
                        return Err("--jobs needs at least one worker".into());
                    }
                }
                "--json" => {
                    let v = it.next().ok_or("--json needs a path (or -)")?;
                    o.json = Some(v.clone());
                }
                "--config" => {
                    let v = it.next().ok_or("--config needs a run kind (or all)")?;
                    o.config = v.clone();
                }
                "--out" => {
                    let v = it.next().ok_or("--out needs a directory")?;
                    o.out = v.clone();
                }
                "--epoch" => {
                    let v = it.next().ok_or("--epoch needs a cycle count")?;
                    o.epoch = v.parse().map_err(|_| format!("bad epoch width {v}"))?;
                }
                "--span-cap" => {
                    let v = it.next().ok_or("--span-cap needs a request count")?;
                    o.span_cap = v.parse().map_err(|_| format!("bad span cap {v}"))?;
                }
                "--plan" => {
                    let v = it.next().ok_or("--plan needs a seed or a file path")?;
                    o.plan = Some(v.clone());
                }
                "--deny" => match it.next().map(String::as_str) {
                    Some("warnings") => o.deny_warnings = true,
                    other => return Err(format!("--deny only takes `warnings`, got {other:?}")),
                },
                "--scale" => match it.next().map(String::as_str) {
                    Some("test") => o.scale = Scale::Test,
                    Some("bench") => o.scale = Scale::Bench,
                    other => return Err(format!("bad scale {other:?}")),
                },
                other => return Err(format!("unknown option {other}")),
            }
        }
        Ok(o)
    }

    fn sim(&self) -> SimConfig {
        SimConfig {
            granularity: self.granularity,
            l2_mode: self.l2_mode,
            ..SimConfig::scaled()
        }
    }

    fn mapping(&self, sim: &SimConfig) -> L2ToMcMapping {
        if self.m2 {
            L2ToMcMapping::halves(sim.mesh, &McPlacement::Corners)
        } else {
            L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement)
        }
    }

    /// The (single-app or whole-suite) harness all simulation commands run
    /// through, so baseline-class runs share layouts and traces.
    fn suite(&self, apps: Vec<App>) -> Suite {
        let sim = self.sim();
        let mapping = self.mapping(&sim);
        Suite::new(apps, mapping, sim).with_threads_per_core(self.threads)
    }

    fn baseline_kind(&self) -> RunKind {
        if self.first_touch {
            RunKind::FirstTouch
        } else {
            RunKind::Baseline
        }
    }

    fn optimized_kind(&self) -> RunKind {
        if self.optimal {
            RunKind::Optimal
        } else {
            RunKind::Optimized
        }
    }
}

/// Writes the JSON summary to the `--json` target (stdout for `-`).
fn emit_json(target: &str, json: &str) -> Result<(), String> {
    if target == "-" {
        print!("{json}");
        Ok(())
    } else {
        std::fs::write(target, json).map_err(|e| format!("writing {target}: {e}"))
    }
}

fn find_app(name: &str, scale: Scale) -> Option<App> {
    all_apps(scale).into_iter().find(|a| a.name() == name)
}

fn cmd_apps(scale: Scale) {
    println!(
        "{:<11} {:>7} {:>6} {:>8} {:>11} {:>4}",
        "app", "arrays", "nests", "accesses", "ft-friendly", "mlp"
    );
    for app in all_apps(scale) {
        println!(
            "{:<11} {:>7} {:>6} {:>8} {:>11} {:>4}",
            app.name(),
            app.program.arrays().len(),
            app.program.nests().len(),
            app.program.iteration_estimate(),
            if app.first_touch_friendly {
                "yes"
            } else {
                "no"
            },
            app.mlp,
        );
    }
}

fn cmd_compile(app: &App, o: &Options) {
    let sim = o.sim();
    let mapping = o.mapping(&sim);
    let layout = layout_for(app, &mapping, &sim, RunKind::Optimized);
    println!("== {} : layout pass report ==", app.name());
    for r in layout.reports() {
        match (&r.reason, r.optimized) {
            (_, true) => println!(
                "  {:<10} optimized   ({}/{} references satisfied)",
                r.name, r.satisfied_refs, r.total_refs
            ),
            (Some(e), false) => {
                println!("  {:<10} skipped     ({})", r.name, e.render(&app.program))
            }
            (None, false) => println!("  {:<10} skipped", r.name),
        }
    }
    println!(
        "arrays optimized: {:.0}%, references satisfied: {:.0}%",
        layout.arrays_optimized() * 100.0,
        layout.refs_satisfied() * 100.0
    );
    let clean = app
        .program
        .nests()
        .iter()
        .filter(|n| parallelization_is_legal(n))
        .count();
    println!(
        "dependence analysis: {clean}/{} nests provably parallel-safe \
         (the rest rely on halo synchronization outside the model)",
        app.program.nests().len()
    );
    // Render the hottest nest before/after, Figure-9 style.
    if let Some(nest) = app
        .program
        .nests()
        .iter()
        .max_by_key(|n| n.iteration_estimate())
    {
        let d2cs: Vec<_> = (0..app.program.arrays().len())
            .map(|i| determine_data_to_core(&app.program, hoploc::affine::ArrayId(i)).ok())
            .collect();
        println!("\n-- hottest nest, original --");
        print!("{}", codegen::render_original(&app.program, nest));
        println!("-- after Data-to-Core mapping --");
        print!(
            "{}",
            codegen::render_data_to_core(&app.program, nest, &d2cs)
        );
        println!("-- after layout customization --");
        print!(
            "{}",
            codegen::render_customized(&app.program, nest, &d2cs, layout.layouts())
        );
    }
}

/// The four layout configurations `check` verifies for every application.
fn check_configs() -> [(&'static str, PassConfig); 4] {
    let base = PassConfig::default();
    [
        (
            "private/cacheline",
            PassConfig {
                l2_mode: L2Mode::Private,
                granularity: Granularity::CacheLine,
                ..base
            },
        ),
        (
            "private/page",
            PassConfig {
                l2_mode: L2Mode::Private,
                granularity: Granularity::Page,
                ..base
            },
        ),
        (
            "shared/cacheline",
            PassConfig {
                l2_mode: L2Mode::Shared,
                granularity: Granularity::CacheLine,
                ..base
            },
        ),
        (
            "shared/page",
            PassConfig {
                l2_mode: L2Mode::Shared,
                granularity: Granularity::Page,
                ..base
            },
        ),
    ]
}

fn cmd_check(target: &str, o: &Options) -> ExitCode {
    let apps = if target == "all" {
        all_apps(o.scale)
    } else {
        match find_app(target, o.scale) {
            Some(app) => vec![app],
            None => {
                eprintln!("unknown application {target}; try `hoploc apps` (or `check all`)");
                return ExitCode::FAILURE;
            }
        }
    };
    let sim = o.sim();
    let mapping = o.mapping(&sim);
    let cfg = CheckConfig::default();
    let configs = check_configs();
    let diags: Vec<_> = parallel_map(&apps, o.jobs, |app| {
        let mut d = check_program(&app.program, &cfg);
        for (label, pass) in &configs {
            let layout = optimize_program(&app.program, &mapping, *pass);
            d.extend(check_layout(&app.program, &layout, label, &cfg));
        }
        d
    })
    .into_iter()
    .flatten()
    .collect();
    print!("{}", render_text(&diags));
    let c = count(&diags);
    println!(
        "checked {} application(s) x {} layout configuration(s): \
         {} error(s), {} warning(s), {} note(s)",
        apps.len(),
        configs.len(),
        c.errors,
        c.warnings,
        c.notes
    );
    if let Some(json_target) = &o.json {
        if let Err(e) = emit_json(json_target, &render_json(&diags)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if should_fail(&diags, o.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_run(app: App, o: &Options) {
    let name = app.name().to_string();
    let suite = o.suite(vec![app]);
    let kinds = [o.baseline_kind(), o.optimized_kind()];
    let records = suite.run_full(&kinds, o.jobs.min(2));
    let (base, opt) = (&records[0].stats, &records[1].stats);
    let imp = Improvement::between(base, opt);
    println!("== {name} ==");
    println!(
        "{:<22} {:>14} {:>14}",
        "",
        format!("{:?}", o.baseline_kind()).to_lowercase(),
        format!("{:?}", o.optimized_kind()).to_lowercase()
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "exec cycles", base.exec_cycles, opt.exec_cycles
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "off-chip accesses", base.offchip_accesses, opt.offchip_accesses
    );
    println!(
        "{:<22} {:>14.2} {:>14.2}",
        "avg off-chip hops",
        base.net.off_chip.avg_hops(),
        opt.net.off_chip.avg_hops()
    );
    println!(
        "{:<22} {:>14.1} {:>14.1}",
        "memory latency (cy)",
        base.memory_latency(),
        opt.memory_latency()
    );
    println!(
        "\nreductions: on-net {:.1}%, off-net {:.1}%, memory {:.1}%, exec {:.1}%",
        imp.onchip_net * 100.0,
        imp.offchip_net * 100.0,
        imp.memory * 100.0,
        imp.exec_time * 100.0
    );
    if let Some(target) = &o.json {
        if let Err(e) = emit_json(target, &to_json(&records, Some(suite.cache_counters()))) {
            eprintln!("error: {e}");
        }
    }
}

fn cmd_links(app: App, o: &Options) {
    let name = app.name().to_string();
    let suite = o.suite(vec![app]);
    let stats = suite.run_one(RunSpec {
        app: 0,
        kind: o.optimized_kind(),
    });
    let sim = suite.sim();
    let width = sim.mesh.width() as usize;
    let util = &stats.link_utilization;
    println!("== {name} : per-node max outgoing-link utilization ==");
    for y in 0..sim.mesh.height() as usize {
        for x in 0..width {
            let n = y * width + x;
            let m = (0..4).map(|d| util[n * 4 + d]).fold(0.0f64, f64::max);
            print!("{:>6.2}", m);
        }
        println!();
    }
    let (node, dir, u) = stats.hottest_link();
    let dirs = ["E", "W", "N", "S"];
    println!(
        "hottest link: node {node} -> {} at {:.1}% utilization",
        dirs[dir],
        u * 100.0
    );
}

/// Resolves `--config` into the run kinds to trace.
fn trace_kinds(config: &str) -> Result<Vec<RunKind>, String> {
    let all = [
        RunKind::Baseline,
        RunKind::Optimized,
        RunKind::FirstTouch,
        RunKind::Optimal,
    ];
    if config == "all" {
        return Ok(all.to_vec());
    }
    all.iter()
        .find(|&&k| kind_name(k) == config)
        .map(|&k| vec![k])
        .ok_or_else(|| {
            format!("unknown trace config {config}; use baseline, optimized, first-touch, optimal, or all")
        })
}

fn cmd_trace(app: App, o: &Options) -> ExitCode {
    let name = app.name().to_string();
    let kinds = match trace_kinds(&o.config) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&o.out) {
        eprintln!("error: creating {}: {e}", o.out);
        return ExitCode::FAILURE;
    }
    let suite = o.suite(vec![app]);
    let specs: Vec<RunSpec> = kinds.iter().map(|&kind| RunSpec { app: 0, kind }).collect();
    let obs = ObsConfig {
        record_spans: true,
        epoch_cycles: o.epoch,
        span_capacity: o.span_cap,
    };
    // One traced run per configuration, fanned across the worker pool.
    let records = suite.run_matrix_traced(&specs, o.jobs, obs);
    println!("== {name} : request-lifecycle traces ==");
    println!(
        "{:<12} {:>12} {:>10} {:>9} {:>12}",
        "config", "exec cycles", "off-chip", "spans", "p95 latency"
    );
    for r in &records {
        let kind = kind_name(r.kind);
        let stem = format!("{}/{}-{}", o.out, name, kind);
        let outputs = [
            (format!("{stem}.trace.json"), r.report.chrome_trace_json()),
            (format!("{stem}.metrics.json"), r.report.metrics_json()),
            (format!("{stem}.links.tsv"), r.report.links_tsv()),
        ];
        for (path, contents) in &outputs {
            if let Err(e) = std::fs::write(path, contents) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!(
            "{:<12} {:>12} {:>10} {:>9} {:>9} cy",
            kind,
            r.stats.exec_cycles,
            r.stats.offchip_accesses,
            r.report.events().len(),
            r.report.quantile("req.offchip_cycles", 0.95),
        );
        if r.report.dropped_spans() > 0 {
            println!(
                "  ({} requests past --span-cap kept counters but no spans)",
                r.report.dropped_spans()
            );
        }
    }
    println!(
        "\nwrote {} file(s) under {}/ — open a .trace.json in https://ui.perfetto.dev",
        3 * records.len(),
        o.out
    );
    ExitCode::SUCCESS
}

/// Resolves `--plan` into a fault plan: a bare u64 seeds moderate-intensity
/// generation with windows placed across `horizon` cycles (so faults land
/// inside the run, whatever its length); anything else is read as a plan
/// text file and used verbatim.
fn resolve_plan(
    o: &Options,
    topo: &hoploc::fault::FaultTopo,
    horizon: u64,
) -> Result<(FaultPlan, String), String> {
    let rates = FaultRates::moderate().with_horizon(horizon);
    let (plan, origin) = match o.plan.as_deref() {
        None => (
            FaultPlan::from_seed(0, topo, &rates),
            "seed 0, moderate".to_string(),
        ),
        Some(s) => match s.parse::<u64>() {
            Ok(seed) => (
                FaultPlan::from_seed(seed, topo, &rates),
                format!("seed {seed}, moderate"),
            ),
            Err(_) => {
                let text = std::fs::read_to_string(s).map_err(|e| format!("reading {s}: {e}"))?;
                (
                    FaultPlan::parse(&text).map_err(|e| format!("{s}: {e}"))?,
                    format!("plan file {s}"),
                )
            }
        },
    };
    plan.validate(topo)
        .map_err(|e| format!("plan does not fit this machine: {e}"))?;
    Ok((plan, origin))
}

fn cmd_faults(app: App, o: &Options) -> ExitCode {
    let name = app.name().to_string();
    let suite = o.suite(vec![app]);
    let topo = fault_topo(suite.sim());
    let kinds = [o.baseline_kind(), o.optimized_kind()];
    // Clean runs first: they are half the comparison, and their length
    // anchors the seeded plan's placement horizon deterministically.
    let clean: Vec<_> = kinds
        .iter()
        .map(|&kind| suite.run_one(RunSpec { app: 0, kind }))
        .collect();
    let horizon = clean.iter().map(|s| s.exec_cycles).max().unwrap_or(0);
    let (plan, origin) = match resolve_plan(o, &topo, horizon) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("== {name} : fault injection ({origin}) ==");
    println!(
        "plan: {} link window(s), {} bank window(s), {} MC outage(s); \
         retry base={} max={} cap={}",
        plan.links.len(),
        plan.banks.len(),
        plan.outages.len(),
        plan.retry.base_backoff,
        plan.retry.max_backoff,
        plan.retry.max_retries
    );
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>8} {:>7} {:>9} {:>9}",
        "kind", "clean cyc", "faulted cyc", "inflation", "retries", "drops", "re-homed", "backstop"
    );
    let mut records = Vec::new();
    for (kind, clean) in kinds.into_iter().zip(clean) {
        let spec = RunSpec { app: 0, kind };
        let faulted = suite.run_one_faulted(spec, &plan);
        let retries: u64 = faulted.mc.iter().map(|m| m.retries).sum();
        println!(
            "{:<12} {:>12} {:>12} {:>8.2}% {:>8} {:>7} {:>9} {:>9}",
            kind_name(kind),
            clean.exec_cycles,
            faulted.exec_cycles,
            (faulted.exec_cycles as f64 / clean.exec_cycles.max(1) as f64 - 1.0) * 100.0,
            retries,
            faulted.dropped_requests,
            faulted.rehomed_requests,
            faulted.backstop_flushes
        );
        records.push(RunRecord {
            app: name.clone(),
            kind,
            stats: faulted,
        });
    }
    if let Some(target) = &o.json {
        if let Err(e) = emit_json(target, &to_json(&records, None)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_trace_validate(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("usage: hoploc trace-validate <trace.json...>");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in files {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                ok = false;
                continue;
            }
        };
        match validate_chrome_trace(&contents) {
            Ok(s) => println!(
                "{path}: OK — {} span event(s), {} metadata event(s), {} track(s)",
                s.span_events, s.meta_events, s.tracks
            ),
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_sweep(o: &Options) {
    let suite = o.suite(all_apps(o.scale));
    let kinds = [o.baseline_kind(), o.optimized_kind()];
    let records = suite.run_full(&kinds, o.jobs);
    let napps = suite.apps().len();
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9}",
        "app", "on-net", "off-net", "memory", "exec"
    );
    for i in 0..napps {
        // run_full orders kinds outermost, apps innermost.
        let base = &records[i].stats;
        let opt = &records[napps + i].stats;
        let imp = Improvement::between(base, opt);
        println!(
            "{:<11} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            records[i].app,
            imp.onchip_net * 100.0,
            imp.offchip_net * 100.0,
            imp.memory * 100.0,
            imp.exec_time * 100.0
        );
    }
    let c = suite.cache_counters();
    println!("\nper-run statistics ({} workers):", o.jobs);
    print!("{}", render_table(&records));
    println!(
        "caches: {} layout compiles ({} reused), {} trace generations ({} reused)",
        c.layout_misses, c.layout_hits, c.trace_misses, c.trace_hits
    );
    if let Some(target) = &o.json {
        if let Err(e) = emit_json(target, &to_json(&records, Some(c))) {
            eprintln!("error: {e}");
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!(
            "usage: hoploc <apps|compile <app>|check <app|all>|run <app>|links <app>|sweep\
             |trace <app>|trace-validate <file...>|faults <app>> [options]"
        );
        eprintln!("see the module docs (or README.md) for the option list");
        ExitCode::FAILURE
    };
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    if cmd == "trace-validate" {
        return cmd_trace_validate(&args[1..]);
    }
    let rest_start = match cmd.as_str() {
        "compile" | "run" | "links" | "check" | "trace" | "faults" => 2,
        _ => 1,
    };
    let opts = match Options::parse(&args[rest_start.min(args.len())..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "apps" => cmd_apps(opts.scale),
        "compile" | "run" | "links" | "trace" | "faults" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(app) = find_app(name, opts.scale) else {
                eprintln!("unknown application {name}; try `hoploc apps`");
                return ExitCode::FAILURE;
            };
            match cmd.as_str() {
                "compile" => cmd_compile(&app, &opts),
                "links" => cmd_links(app, &opts),
                "trace" => return cmd_trace(app, &opts),
                "faults" => return cmd_faults(app, &opts),
                _ => cmd_run(app, &opts),
            }
        }
        "check" => {
            let Some(target) = args.get(1) else {
                return usage();
            };
            return cmd_check(target, &opts);
        }
        "sweep" => cmd_sweep(&opts),
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
