//! `hoploc` — command-line driver for the PLDI'15 reproduction.
//!
//! ```text
//! hoploc apps                      list the modelled applications
//! hoploc compile <app>             run the layout pass, print coverage + code
//! hoploc check <app|all>           statically verify layouts, races, bounds
//!                                  + predicted-performance findings (HL10xx)
//! hoploc est <app|all> [options]   static off-chip prediction vs cycle-sim
//!                                  ground truth: the full app x kind x
//!                                  config matrix side by side, Spearman
//!                                  rank correlation, self-timed speedup
//! hoploc run <app> [options]       simulate baseline vs optimized
//! hoploc sweep [options]           run the whole suite, one row per app
//! hoploc bench [options]           time every pipeline phase (layout,
//!                                  estimate, simulate) over the suite and
//!                                  emit the wall-clock baseline JSON
//! hoploc search <app|all> [options] seeded design-space search over MC
//!                                  placements, cluster maps, and layout
//!                                  plans: branch-and-bound + simulated
//!                                  annealing scored by the static
//!                                  estimator, top candidates verified by
//!                                  the cycle sim against the paper's
//!                                  corner/edge/diamond placements
//! hoploc trace <app> [options]     simulate with full request-lifecycle
//!                                  tracing; write Chrome-trace JSON
//!                                  (Perfetto-loadable), a metrics snapshot,
//!                                  and a per-link heatmap per configuration
//! hoploc trace-validate <file...>  schema-check Chrome-trace JSON files
//! hoploc faults <app> [options]    simulate under a deterministic fault
//!                                  plan (link latency windows, DRAM bank
//!                                  stalls/transient errors with bounded
//!                                  retry, whole-MC outages with
//!                                  re-homing) and report the degradation
//! hoploc serve [options]           serve simulations over TCP: bounded
//!                                  queue with backpressure, duplicate
//!                                  coalescing, LRU result cache, graceful
//!                                  drain (send "drain" on the connection
//!                                  or type `drain` on stdin)
//! hoploc load [options]            loopback load generator: concurrent
//!                                  clients submit the app x run-kind
//!                                  matrix and report throughput and tail
//!                                  latency
//!
//! `check` proves every layout recipe injective and in-bounds, re-derives
//! the dependence verdicts behind each nest's parallel dimension, and
//! lints accesses against the declared array bounds — over all four
//! layout configurations ({private, shared} × {cacheline, page}) — and
//! reports structured `HLxxxx` diagnostics. Exit status is nonzero on
//! errors (or on warnings too, under `--deny warnings`).
//!
//! options (each subcommand accepts its own subset; an unknown flag
//! names the subcommand and lists the valid options):
//!   --page | --cacheline           interleaving granularity (default cacheline)
//!   --shared                       shared SNUCA L2 instead of private L2s
//!   --m2                           use the M2 (halves, k=2) mapping
//!   --first-touch                  compare against first-touch instead of baseline
//!   --optimal                      run the Section-2 optimal scheme instead
//!   --threads <n>                  threads per core (default 1)
//!   --prefetch <off|stride|stream|gated>
//!                                  per-L2-slice prefetch engine (default
//!                                  off; `gated` throttles by the off-chip
//!                                  predictor). Also turns on the HL11xx
//!                                  advisories in `check` and the pf_*
//!                                  fields in `bench --json`
//!   --scale <test|bench>           problem size (default bench)
//!   --jobs <n>                     worker threads for the suite sweep
//!                                  (default: available parallelism)
//!   --json <path|->                also write a machine-readable JSON
//!                                  summary (- for stdout)
//!   --deny warnings                (check) treat warnings as fatal
//!   --config <kind|all>            (trace) which run kind(s) to trace
//!   --out <dir>                    (trace) output directory (default traces)
//!   --epoch <cycles>               (trace) windowed-series epoch width
//!   --span-cap <n>                 (trace) record spans for the first n
//!                                  requests only (0 = unlimited)
//!   --plan <seed|file>             (faults) a u64 seed or a plan file
//!   --seed <n>                     (search) master seed, forked per app
//!                                  (default 0)
//!   --budget <n>                   (search) estimator evaluations per app
//!                                  (default 400)
//!   --objective <terms>            (search) comma list of offchip, hops,
//!                                  queue, each optionally `name:weight`
//!                                  (default offchip,hops; queue excluded —
//!                                  see DESIGN.md §14)
//!   --addr <host:port>             (serve, load) server address
//!                                  (default 127.0.0.1:7077; port 0 picks
//!                                  a free port and prints it)
//!   --workers <n>                  (serve) job worker threads (default 2)
//!   --queue-cap <n>                (serve) queue capacity before
//!                                  backpressure rejects (default 64)
//!   --cache-cap <n>                (serve) result-cache entries, 0 to
//!                                  disable (default 256)
//!   --timeout-ms <ms>              (serve) per-job wall-clock budget,
//!                                  0 = none (default 0)
//!   --retry-after-ms <ms>          (serve) backoff hint sent with
//!                                  queue_full rejections (default 25)
//!   --metrics-out <path>           (serve) write the final metrics
//!                                  snapshot here after drain
//!   --clients <n>                  (load) concurrent connections (default 4)
//!   --repeat <n>                   (load) submissions per matrix cell
//!                                  (default 2; >1 exercises coalescing)
//!   --max-retries <n>              (load) backpressure retry budget
//!   --drain                        (load) drain the server afterwards
//! ```
//!
//! Usage errors (unknown subcommand/flag/value) exit 2; runtime failures
//! exit 1.

mod args;

use args::{parse, Options};
use hoploc::affine::parallelization_is_legal;
use hoploc::check::{
    check_layout, check_program, count, render_json, render_text, should_fail, CheckConfig,
};
use hoploc::est;
use hoploc::fault::{FaultPlan, FaultRates};
use hoploc::harness::{
    fault_topo, kind_name, parallel_map, render_table, to_json, RunRecord, RunSpec, Suite,
};
use hoploc::layout::{
    codegen, determine_data_to_core, optimize_program, Granularity, L2Mode, PassConfig,
};
use hoploc::noc::{L2ToMcMapping, McPlacement, Placement};
use hoploc::obs::{validate_chrome_trace, ObsConfig};
use hoploc::serve::{
    load::{render_report, report_json},
    Client, EngineCaps, LoadConfig, ServeConfig, Server, SuiteEngine,
};
use hoploc::sim::{Improvement, PrefetchConfig, SimConfig};
use hoploc::workloads::{all_apps, layout_for, App, RunKind, Scale};
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;

/// Usage errors (bad subcommand, flag, or value) exit with this code;
/// runtime failures exit 1.
const USAGE: u8 = 2;

fn sim(o: &Options) -> SimConfig {
    SimConfig {
        granularity: o.granularity,
        l2_mode: o.l2_mode,
        prefetch: PrefetchConfig::with_mode(o.prefetch),
        ..SimConfig::scaled()
    }
}

fn mapping(o: &Options, sim: &SimConfig) -> L2ToMcMapping {
    let placement = if o.m2 {
        Placement::halves(sim.mesh, &McPlacement::Corners)
    } else {
        Placement::nearest(sim.mesh, &sim.placement)
    };
    placement.into_mapping()
}

/// The (single-app or whole-suite) harness all simulation commands run
/// through, so baseline-class runs share layouts and traces.
fn suite(o: &Options, apps: Vec<App>) -> Suite {
    let sim = sim(o);
    let mapping = mapping(o, &sim);
    Suite::new(apps, mapping, sim).with_threads_per_core(o.threads)
}

/// Writes the JSON summary to the `--json` target (stdout for `-`).
fn emit_json(target: &str, json: &str) -> Result<(), String> {
    if target == "-" {
        print!("{json}");
        Ok(())
    } else {
        std::fs::write(target, json).map_err(|e| format!("writing {target}: {e}"))
    }
}

fn find_app(name: &str, scale: Scale) -> Option<App> {
    all_apps(scale).into_iter().find(|a| a.name() == name)
}

fn cmd_apps(scale: Scale) {
    println!(
        "{:<11} {:>7} {:>6} {:>8} {:>11} {:>4}",
        "app", "arrays", "nests", "accesses", "ft-friendly", "mlp"
    );
    for app in all_apps(scale) {
        println!(
            "{:<11} {:>7} {:>6} {:>8} {:>11} {:>4}",
            app.name(),
            app.program.arrays().len(),
            app.program.nests().len(),
            app.program.iteration_estimate(),
            if app.first_touch_friendly {
                "yes"
            } else {
                "no"
            },
            app.mlp,
        );
    }
}

fn cmd_compile(app: &App, o: &Options) {
    let sim = sim(o);
    let mapping = mapping(o, &sim);
    let layout = layout_for(app, &mapping, &sim, RunKind::Optimized);
    println!("== {} : layout pass report ==", app.name());
    for r in layout.reports() {
        match (&r.reason, r.optimized) {
            (_, true) => println!(
                "  {:<10} optimized   ({}/{} references satisfied)",
                r.name, r.satisfied_refs, r.total_refs
            ),
            (Some(e), false) => {
                println!("  {:<10} skipped     ({})", r.name, e.render(&app.program))
            }
            (None, false) => println!("  {:<10} skipped", r.name),
        }
    }
    println!(
        "arrays optimized: {:.0}%, references satisfied: {:.0}%",
        layout.arrays_optimized() * 100.0,
        layout.refs_satisfied() * 100.0
    );
    let clean = app
        .program
        .nests()
        .iter()
        .filter(|n| parallelization_is_legal(n))
        .count();
    println!(
        "dependence analysis: {clean}/{} nests provably parallel-safe \
         (the rest rely on halo synchronization outside the model)",
        app.program.nests().len()
    );
    // Render the hottest nest before/after, Figure-9 style.
    if let Some(nest) = app
        .program
        .nests()
        .iter()
        .max_by_key(|n| n.iteration_estimate())
    {
        let d2cs: Vec<_> = (0..app.program.arrays().len())
            .map(|i| determine_data_to_core(&app.program, hoploc::affine::ArrayId(i)).ok())
            .collect();
        println!("\n-- hottest nest, original --");
        print!("{}", codegen::render_original(&app.program, nest));
        println!("-- after Data-to-Core mapping --");
        print!(
            "{}",
            codegen::render_data_to_core(&app.program, nest, &d2cs)
        );
        println!("-- after layout customization --");
        print!(
            "{}",
            codegen::render_customized(&app.program, nest, &d2cs, layout.layouts())
        );
    }
}

/// The four layout configurations `check` verifies for every application.
fn check_configs() -> [(&'static str, PassConfig); 4] {
    let base = PassConfig::default();
    [
        (
            "private/cacheline",
            PassConfig {
                l2_mode: L2Mode::Private,
                granularity: Granularity::CacheLine,
                ..base
            },
        ),
        (
            "private/page",
            PassConfig {
                l2_mode: L2Mode::Private,
                granularity: Granularity::Page,
                ..base
            },
        ),
        (
            "shared/cacheline",
            PassConfig {
                l2_mode: L2Mode::Shared,
                granularity: Granularity::CacheLine,
                ..base
            },
        ),
        (
            "shared/page",
            PassConfig {
                l2_mode: L2Mode::Shared,
                granularity: Granularity::Page,
                ..base
            },
        ),
    ]
}

fn cmd_check(target: &str, o: &Options) -> ExitCode {
    let apps = if target == "all" {
        all_apps(o.scale)
    } else {
        match find_app(target, o.scale) {
            Some(app) => vec![app],
            None => {
                eprintln!("unknown application {target}; try `hoploc apps` (or `check all`)");
                return ExitCode::FAILURE;
            }
        }
    };
    let sim = sim(o);
    let mapping = mapping(o, &sim);
    let cfg = CheckConfig::default();
    let configs = check_configs();
    let diags: Vec<_> = parallel_map(&apps, o.jobs, |app| {
        let mut d = check_program(&app.program, &cfg);
        for (label, pass) in &configs {
            let layout = optimize_program(&app.program, &mapping, *pass);
            d.extend(check_layout(&app.program, &layout, label, &cfg));
            // Predicted-performance findings (HL10xx) from the static
            // estimator, under the same configuration the legality checks
            // just verified.
            let esim = SimConfig {
                granularity: pass.granularity,
                l2_mode: pass.l2_mode,
                ..SimConfig::scaled()
            };
            let ecfg = est::EstConfig::from_sim(&esim).with_threads_per_core(o.threads);
            d.extend(est::performance_diagnostics(
                app, &layout, &mapping, &ecfg, label,
            ));
            // Prefetch advisories (HL11xx) are opt-in: they judge the
            // *requested* engine, so without --prefetch there is nothing
            // to judge — and HL1102 warnings for an engine nobody asked
            // for would trip --deny warnings gates.
            if o.prefetch != hoploc::prefetch::PrefetchMode::Off {
                d.extend(est::prefetch_diagnostics(
                    app,
                    &layout,
                    &mapping,
                    &ecfg,
                    label,
                    o.prefetch.name(),
                ));
            }
        }
        d
    })
    .into_iter()
    .flatten()
    .collect();
    print!("{}", render_text(&diags));
    let c = count(&diags);
    println!(
        "checked {} application(s) x {} layout configuration(s): \
         {} error(s), {} warning(s), {} note(s)",
        apps.len(),
        configs.len(),
        c.errors,
        c.warnings,
        c.notes
    );
    if let Some(json_target) = &o.json {
        if let Err(e) = emit_json(json_target, &render_json(&diags)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if should_fail(&diags, o.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_est(target: &str, o: &Options) -> ExitCode {
    let apps = if target == "all" {
        all_apps(o.scale)
    } else {
        match find_app(target, o.scale) {
            Some(app) => vec![app],
            None => {
                eprintln!("unknown application {target}; try `hoploc apps` (or `est all`)");
                return ExitCode::FAILURE;
            }
        }
    };
    eprintln!(
        "cross-validating {} app(s) x {} kind(s) x {} config(s) \
         (the simulator pass is the slow half) ...",
        apps.len(),
        est::KINDS.len(),
        est::standard_configs().len()
    );
    let report = est::cross_validate(&apps, o.jobs);
    print!("{}", est::render_text(&report));
    if let Some(target) = &o.json {
        if let Err(e) = emit_json(target, &est::xval_json(&report)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// One timed `hoploc bench` phase over the whole (app x kind) matrix.
struct BenchPhase {
    name: &'static str,
    wall_ms: f64,
}

fn cmd_bench(o: &Options) -> ExitCode {
    use std::time::Instant;
    let suite = suite(o, all_apps(o.scale));
    let specs: Vec<RunSpec> = (0..suite.apps().len())
        .flat_map(|a| est::KINDS.iter().map(move |&kind| RunSpec { app: a, kind }))
        .collect();
    let total = Instant::now();
    let mut phases = Vec::new();
    let mut timed = |name: &'static str, f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        phases.push(BenchPhase {
            name,
            wall_ms: t.elapsed().as_secs_f64() * 1e3,
        });
    };
    timed("layout", &mut || {
        for s in &specs {
            let _ = suite.layout_plan(s.app, s.kind);
        }
    });
    let cfg = est::EstConfig::from_sim(suite.sim()).with_threads_per_core(o.threads);
    let mut ests = Vec::new();
    timed("estimate", &mut || {
        ests = parallel_map(&specs, o.jobs, |s| {
            let plan = suite.layout_plan(s.app, s.kind);
            est::estimate_app(&suite.apps()[s.app], &plan, suite.mapping(), s.kind, &cfg)
        });
    });
    let mut stats = Vec::new();
    timed("simulate", &mut || {
        stats = parallel_map(&specs, o.jobs, |s| suite.run_one(*s));
    });
    let total_ms = total.elapsed().as_secs_f64() * 1e3;
    println!(
        "== hoploc bench: {} cells ({} apps x {} kinds), {} worker(s) ==",
        specs.len(),
        suite.apps().len(),
        est::KINDS.len(),
        o.jobs
    );
    println!("{:<10} {:>12}", "phase", "wall-clock");
    for p in &phases {
        println!("{:<10} {:>9.1} ms", p.name, p.wall_ms);
    }
    println!(
        "{:<10} {:>9.1} ms   (simulate includes trace generation)",
        "total", total_ms
    );
    if let Some(target) = &o.json {
        let mut json = format!(
            "{{\n  \"scale\": \"{}\",\n  \"jobs\": {},\n  \"cells\": {},\n  \"phases\": [\n",
            if o.scale == Scale::Bench {
                "bench"
            } else {
                "test"
            },
            o.jobs,
            specs.len(),
        );
        for (i, p) in phases.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {:.3}}}{}\n",
                p.name,
                p.wall_ms,
                if i + 1 < phases.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"total_wall_ms\": {total_ms:.3},\n  \"cells_detail\": [\n"
        ));
        for (i, (spec, (e, st))) in specs.iter().zip(ests.iter().zip(&stats)).enumerate() {
            let mut cell = format!(
                "    {{\"app\": \"{}\", \"kind\": \"{}\", \"exec_cycles\": {}, \
                 \"sim_offchip_fraction\": {:.6}, \"est_offchip_fraction\": {:.6}",
                suite.apps()[spec.app].name(),
                kind_name(spec.kind),
                st.exec_cycles,
                st.offchip_fraction(),
                e.offchip_fraction(),
            );
            // Per-cell prefetch effectiveness, present only when the run
            // actually prefetched (off runs keep pre-prefetch bytes).
            if !st.prefetch.is_empty() {
                cell.push_str(&format!(
                    ", \"pf_issued\": {}, \"pf_accuracy\": {:.6}, \
                     \"pf_coverage\": {:.6}, \"pf_pred_accuracy\": {:.6}",
                    st.prefetch.issued,
                    st.prefetch.accuracy(),
                    st.prefetch.coverage(st.offchip_accesses),
                    st.prefetch.pred_accuracy(),
                ));
            }
            json.push_str(&cell);
            json.push_str(&format!(
                "}}{}\n",
                if i + 1 < specs.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        if let Err(e) = emit_json(target, &json) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_run(app: App, o: &Options) {
    let name = app.name().to_string();
    let suite = suite(o, vec![app]);
    let kinds = [o.baseline_kind(), o.optimized_kind()];
    let records = suite.run_full(&kinds, o.jobs.min(2));
    let (base, opt) = (&records[0].stats, &records[1].stats);
    let imp = Improvement::between(base, opt);
    println!("== {name} ==");
    println!(
        "{:<22} {:>14} {:>14}",
        "",
        format!("{:?}", o.baseline_kind()).to_lowercase(),
        format!("{:?}", o.optimized_kind()).to_lowercase()
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "exec cycles", base.exec_cycles, opt.exec_cycles
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "off-chip accesses", base.offchip_accesses, opt.offchip_accesses
    );
    println!(
        "{:<22} {:>14.2} {:>14.2}",
        "avg off-chip hops",
        base.net.off_chip.avg_hops(),
        opt.net.off_chip.avg_hops()
    );
    println!(
        "{:<22} {:>14.1} {:>14.1}",
        "memory latency (cy)",
        base.memory_latency(),
        opt.memory_latency()
    );
    println!(
        "\nreductions: on-net {:.1}%, off-net {:.1}%, memory {:.1}%, exec {:.1}%",
        imp.onchip_net * 100.0,
        imp.offchip_net * 100.0,
        imp.memory * 100.0,
        imp.exec_time * 100.0
    );
    if let Some(target) = &o.json {
        if let Err(e) = emit_json(target, &to_json(&records, Some(suite.cache_counters()))) {
            eprintln!("error: {e}");
        }
    }
}

fn cmd_links(app: App, o: &Options) {
    let name = app.name().to_string();
    let suite = suite(o, vec![app]);
    let stats = suite.run_one(RunSpec {
        app: 0,
        kind: o.optimized_kind(),
    });
    let sim = suite.sim();
    let width = sim.mesh.width() as usize;
    let util = &stats.link_utilization;
    println!("== {name} : per-node max outgoing-link utilization ==");
    for y in 0..sim.mesh.height() as usize {
        for x in 0..width {
            let n = y * width + x;
            let m = (0..4).map(|d| util[n * 4 + d]).fold(0.0f64, f64::max);
            print!("{:>6.2}", m);
        }
        println!();
    }
    let (node, dir, u) = stats.hottest_link();
    let dirs = ["E", "W", "N", "S"];
    println!(
        "hottest link: node {node} -> {} at {:.1}% utilization",
        dirs[dir],
        u * 100.0
    );
}

/// Resolves `--config` into the run kinds to trace.
fn trace_kinds(config: &str) -> Result<Vec<RunKind>, String> {
    let all = [
        RunKind::Baseline,
        RunKind::Optimized,
        RunKind::FirstTouch,
        RunKind::Optimal,
    ];
    if config == "all" {
        return Ok(all.to_vec());
    }
    all.iter()
        .find(|&&k| kind_name(k) == config)
        .map(|&k| vec![k])
        .ok_or_else(|| {
            format!("unknown trace config {config}; use baseline, optimized, first-touch, optimal, or all")
        })
}

fn cmd_trace(app: App, o: &Options) -> ExitCode {
    let name = app.name().to_string();
    let kinds = match trace_kinds(&o.config) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(USAGE);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&o.out) {
        eprintln!("error: creating {}: {e}", o.out);
        return ExitCode::FAILURE;
    }
    let suite = suite(o, vec![app]);
    let specs: Vec<RunSpec> = kinds.iter().map(|&kind| RunSpec { app: 0, kind }).collect();
    let obs = ObsConfig {
        record_spans: true,
        epoch_cycles: o.epoch,
        span_capacity: o.span_cap,
        prefetch: o.prefetch != hoploc::prefetch::PrefetchMode::Off,
    };
    // One traced run per configuration, fanned across the worker pool.
    let records = suite.run_matrix_traced(&specs, o.jobs, obs);
    println!("== {name} : request-lifecycle traces ==");
    println!(
        "{:<12} {:>12} {:>10} {:>9} {:>12}",
        "config", "exec cycles", "off-chip", "spans", "p95 latency"
    );
    for r in &records {
        let kind = kind_name(r.kind);
        let stem = format!("{}/{}-{}", o.out, name, kind);
        let outputs = [
            (format!("{stem}.trace.json"), r.report.chrome_trace_json()),
            (format!("{stem}.metrics.json"), r.report.metrics_json()),
            (format!("{stem}.links.tsv"), r.report.links_tsv()),
        ];
        for (path, contents) in &outputs {
            if let Err(e) = std::fs::write(path, contents) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!(
            "{:<12} {:>12} {:>10} {:>9} {:>9} cy",
            kind,
            r.stats.exec_cycles,
            r.stats.offchip_accesses,
            r.report.events().len(),
            r.report.quantile("req.offchip_cycles", 0.95),
        );
        if r.report.dropped_spans() > 0 {
            println!(
                "  ({} requests past --span-cap kept counters but no spans)",
                r.report.dropped_spans()
            );
        }
    }
    println!(
        "\nwrote {} file(s) under {}/ — open a .trace.json in https://ui.perfetto.dev",
        3 * records.len(),
        o.out
    );
    ExitCode::SUCCESS
}

/// Resolves `--plan` into a fault plan: a bare u64 seeds moderate-intensity
/// generation with windows placed across `horizon` cycles (so faults land
/// inside the run, whatever its length); anything else is read as a plan
/// text file and used verbatim.
fn resolve_plan(
    o: &Options,
    topo: &hoploc::fault::FaultTopo,
    horizon: u64,
) -> Result<(FaultPlan, String), String> {
    let rates = FaultRates::moderate().with_horizon(horizon);
    let (plan, origin) = match o.plan.as_deref() {
        None => (
            FaultPlan::from_seed(0, topo, &rates),
            "seed 0, moderate".to_string(),
        ),
        Some(s) => match s.parse::<u64>() {
            Ok(seed) => (
                FaultPlan::from_seed(seed, topo, &rates),
                format!("seed {seed}, moderate"),
            ),
            Err(_) => {
                let text = std::fs::read_to_string(s).map_err(|e| format!("reading {s}: {e}"))?;
                (
                    FaultPlan::parse(&text).map_err(|e| format!("{s}: {e}"))?,
                    format!("plan file {s}"),
                )
            }
        },
    };
    plan.validate(topo)
        .map_err(|e| format!("plan does not fit this machine: {e}"))?;
    Ok((plan, origin))
}

fn cmd_faults(app: App, o: &Options) -> ExitCode {
    let name = app.name().to_string();
    let suite = suite(o, vec![app]);
    let topo = fault_topo(suite.sim());
    let kinds = [o.baseline_kind(), o.optimized_kind()];
    // Clean runs first: they are half the comparison, and their length
    // anchors the seeded plan's placement horizon deterministically.
    let clean: Vec<_> = kinds
        .iter()
        .map(|&kind| suite.run_one(RunSpec { app: 0, kind }))
        .collect();
    let horizon = clean.iter().map(|s| s.exec_cycles).max().unwrap_or(0);
    let (plan, origin) = match resolve_plan(o, &topo, horizon) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("== {name} : fault injection ({origin}) ==");
    println!(
        "plan: {} link window(s), {} bank window(s), {} MC outage(s); \
         retry base={} max={} cap={}",
        plan.links.len(),
        plan.banks.len(),
        plan.outages.len(),
        plan.retry.base_backoff,
        plan.retry.max_backoff,
        plan.retry.max_retries
    );
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>8} {:>7} {:>9} {:>9}",
        "kind", "clean cyc", "faulted cyc", "inflation", "retries", "drops", "re-homed", "backstop"
    );
    let mut records = Vec::new();
    for (kind, clean) in kinds.into_iter().zip(clean) {
        let spec = RunSpec { app: 0, kind };
        let faulted = suite.run_one_faulted(spec, &plan);
        let retries: u64 = faulted.mc.iter().map(|m| m.retries).sum();
        println!(
            "{:<12} {:>12} {:>12} {:>8.2}% {:>8} {:>7} {:>9} {:>9}",
            kind_name(kind),
            clean.exec_cycles,
            faulted.exec_cycles,
            (faulted.exec_cycles as f64 / clean.exec_cycles.max(1) as f64 - 1.0) * 100.0,
            retries,
            faulted.dropped_requests,
            faulted.rehomed_requests,
            faulted.backstop_flushes
        );
        records.push(RunRecord {
            app: name.clone(),
            kind,
            stats: faulted,
        });
    }
    if let Some(target) = &o.json {
        if let Err(e) = emit_json(target, &to_json(&records, None)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_trace_validate(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("usage: hoploc trace-validate <trace.json...>");
        return ExitCode::from(USAGE);
    }
    let mut ok = true;
    for path in files {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                ok = false;
                continue;
            }
        };
        match validate_chrome_trace(&contents) {
            Ok(s) => println!(
                "{path}: OK — {} span event(s), {} metadata event(s), {} track(s)",
                s.span_events, s.meta_events, s.tracks
            ),
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_sweep(o: &Options) {
    let suite = suite(o, all_apps(o.scale));
    let kinds = [o.baseline_kind(), o.optimized_kind()];
    let records = suite.run_full(&kinds, o.jobs);
    let napps = suite.apps().len();
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9}",
        "app", "on-net", "off-net", "memory", "exec"
    );
    for i in 0..napps {
        // run_full orders kinds outermost, apps innermost.
        let base = &records[i].stats;
        let opt = &records[napps + i].stats;
        let imp = Improvement::between(base, opt);
        println!(
            "{:<11} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            records[i].app,
            imp.onchip_net * 100.0,
            imp.offchip_net * 100.0,
            imp.memory * 100.0,
            imp.exec_time * 100.0
        );
    }
    let c = suite.cache_counters();
    println!("\nper-run statistics ({} workers):", o.jobs);
    print!("{}", render_table(&records));
    println!(
        "caches: {} layout compiles ({} reused), {} trace generations ({} reused)",
        c.layout_misses, c.layout_hits, c.trace_misses, c.trace_hits
    );
    if let Some(target) = &o.json {
        if let Err(e) = emit_json(target, &to_json(&records, Some(c))) {
            eprintln!("error: {e}");
        }
    }
}

/// Watches stdin for drain requests: an explicit `drain` line always
/// drains; EOF drains only at an interactive terminal (Ctrl-D), so a
/// server backgrounded with `</dev/null` keeps serving.
fn watch_stdin(core: Arc<hoploc::serve::Core>) {
    use std::io::IsTerminal;
    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim() == "drain" {
            core.drain();
            return;
        }
    }
    if interactive {
        core.drain();
    }
}

fn cmd_serve(o: &Options) -> ExitCode {
    let engine = Arc::new(SuiteEngine::new(EngineCaps::default()));
    let cfg = ServeConfig {
        workers: o.workers,
        queue_cap: o.queue_cap,
        cache_cap: o.cache_cap,
        job_timeout_ms: o.timeout_ms,
        retry_after_ms: o.retry_after_ms,
    };
    let server = match Server::bind(o.addr.as_str(), engine, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: binding {}: {e}", o.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "hoploc serve: listening on {addr} ({} workers, queue {}, cache {}, timeout {})",
        cfg.workers,
        cfg.queue_cap,
        cfg.cache_cap,
        if cfg.job_timeout_ms == 0 {
            "none".to_string()
        } else {
            format!("{} ms", cfg.job_timeout_ms)
        }
    );
    println!("hoploc serve: send {{\"op\":\"drain\"}} or type `drain` to shut down");
    let core = server.core();
    std::thread::spawn(move || watch_stdin(core));
    let summary = server.run();
    if let Some(path) = &o.metrics_out {
        if let Err(e) = std::fs::write(path, &summary.metrics) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("hoploc serve: metrics snapshot written to {path}");
    }
    println!(
        "hoploc serve: drained — {} job(s) answered, {} simulation(s) executed",
        summary.answered, summary.executed
    );
    ExitCode::SUCCESS
}

fn cmd_load(o: &Options) -> ExitCode {
    let cfg = LoadConfig {
        clients: o.clients,
        repeat: o.repeat,
        scale: o.scale,
        kinds: vec![o.baseline_kind(), o.optimized_kind()],
        max_retries: o.max_retries,
    };
    println!(
        "hoploc load: {} client(s) x ({} apps x {} kinds x {} repeat) against {}",
        cfg.clients,
        all_apps(cfg.scale).len(),
        cfg.kinds.len(),
        cfg.repeat,
        o.addr
    );
    let report = match hoploc::serve::run_load(o.addr.as_str(), &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", render_report(&report));
    if let Some(target) = &o.json {
        if let Err(e) = emit_json(target, &report_json(&report)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if o.drain {
        let drained = Client::connect(o.addr.as_str())
            .map_err(|e| format!("connect: {e}"))
            .and_then(|mut c| c.drain());
        match drained {
            Ok((answered, executed, _)) => println!(
                "drain: server answered {answered} job(s), executed {executed} simulation(s)"
            ),
            Err(e) => {
                eprintln!("error: drain: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if report.failed > 0 {
        eprintln!("error: {} job(s) failed", report.failed);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `hoploc search <app|all>`: seeded design-space search over MC
/// placement, cluster maps, and layout-plan parameters, scored by the
/// static estimator and cycle-sim verified against the paper placements.
fn cmd_search(target: &str, o: &Options) -> ExitCode {
    let objective = match hoploc::search::Objective::parse(&o.objective) {
        Ok(obj) => obj,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(USAGE);
        }
    };
    let apps: Vec<App> = if target == "all" {
        all_apps(o.scale)
    } else {
        match find_app(target, o.scale) {
            Some(a) => vec![a],
            None => {
                eprintln!("unknown application {target}; try `hoploc apps`");
                return ExitCode::FAILURE;
            }
        }
    };
    let cfg = hoploc::search::SearchConfig {
        seed: o.seed,
        budget: o.budget,
        objective,
        ..hoploc::search::SearchConfig::new(sim(o), o.scale)
    };
    let results = hoploc::search::search_suite(&apps, &cfg, o.jobs);
    if o.json.as_deref() == Some("-") {
        // Streaming form: progress-event lines then the report line, per
        // app in suite order — byte-identical to a serve `watch` stream
        // of the same seed.
        for (report, events) in &results {
            for e in events {
                println!("{e}");
            }
            println!("{}", report.to_json());
        }
        return ExitCode::SUCCESS;
    }
    println!("{}", hoploc::search::text_header());
    for (report, _) in &results {
        println!("{}", report.text_row());
    }
    let wins = results
        .iter()
        .filter(|(r, _)| r.beats_diamond() && r.beats_edge())
        .count();
    println!(
        "\nseed {}, budget {}: found designs beat both paper placements \
         (diamond and edge) on {wins}/{} app(s)",
        cfg.seed,
        cfg.budget,
        results.len()
    );
    if let Some(target) = &o.json {
        let mut out = String::new();
        for (report, events) in &results {
            for e in events {
                out.push_str(e);
                out.push('\n');
            }
            out.push_str(&report.to_json());
            out.push('\n');
        }
        if let Err(e) = emit_json(target, &out) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!(
            "usage: hoploc <apps|compile <app>|check <app|all>|est <app|all>|run <app>\
             |links <app>|sweep|bench|search <app|all>|trace <app>\
             |trace-validate <file...>|faults <app>|serve|load> [options]"
        );
        eprintln!("see the module docs (or README.md) for the option list");
        ExitCode::from(USAGE)
    };
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    if cmd == "trace-validate" {
        return cmd_trace_validate(&args[1..]);
    }
    // Subcommands with a positional argument parse options after it.
    let rest_start = match cmd.as_str() {
        "compile" | "run" | "links" | "check" | "est" | "search" | "trace" | "faults" => 2,
        _ => 1,
    };
    let opts = match parse(&cmd, &args[rest_start.min(args.len())..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(USAGE);
        }
    };
    match cmd.as_str() {
        "apps" => cmd_apps(opts.scale),
        "compile" | "run" | "links" | "trace" | "faults" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(app) = find_app(name, opts.scale) else {
                eprintln!("unknown application {name}; try `hoploc apps`");
                return ExitCode::FAILURE;
            };
            match cmd.as_str() {
                "compile" => cmd_compile(&app, &opts),
                "links" => cmd_links(app, &opts),
                "trace" => return cmd_trace(app, &opts),
                "faults" => return cmd_faults(app, &opts),
                _ => cmd_run(app, &opts),
            }
        }
        "check" => {
            let Some(target) = args.get(1) else {
                return usage();
            };
            return cmd_check(target, &opts);
        }
        "est" => {
            let Some(target) = args.get(1) else {
                return usage();
            };
            return cmd_est(target, &opts);
        }
        "search" => {
            let Some(target) = args.get(1) else {
                return usage();
            };
            return cmd_search(target, &opts);
        }
        "sweep" => cmd_sweep(&opts),
        "bench" => return cmd_bench(&opts),
        "serve" => return cmd_serve(&opts),
        "load" => return cmd_load(&opts),
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
