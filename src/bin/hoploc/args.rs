//! One shared option parser for every `hoploc` subcommand.
//!
//! Each subcommand declares which flags it accepts; the parse loop,
//! value handling, and error wording live here once. Unknown or
//! malformed flags produce the same shape of message everywhere —
//! naming the subcommand and listing its valid options — and are
//! *usage* errors (exit code 2), distinct from runtime failures
//! (exit code 1).

use hoploc::harness::default_jobs;
use hoploc::layout::{Granularity, L2Mode};
use hoploc::obs::ObsConfig;
use hoploc::prefetch::PrefetchMode;
use hoploc::workloads::{RunKind, Scale};

/// Parsed options, defaulted; each subcommand reads the fields it uses.
#[derive(Debug)]
pub struct Options {
    pub granularity: Granularity,
    pub l2_mode: L2Mode,
    pub m2: bool,
    pub first_touch: bool,
    pub optimal: bool,
    pub threads: usize,
    pub scale: Scale,
    pub prefetch: PrefetchMode,
    pub jobs: usize,
    pub json: Option<String>,
    pub deny_warnings: bool,
    pub config: String,
    pub out: String,
    pub epoch: u64,
    pub span_cap: u64,
    pub plan: Option<String>,
    // serve / load
    pub addr: String,
    pub workers: usize,
    pub queue_cap: usize,
    pub cache_cap: usize,
    pub timeout_ms: u64,
    pub retry_after_ms: u64,
    pub metrics_out: Option<String>,
    pub clients: usize,
    pub repeat: usize,
    pub max_retries: u64,
    pub drain: bool,
    // search
    pub seed: u64,
    pub budget: u32,
    pub objective: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            granularity: Granularity::CacheLine,
            l2_mode: L2Mode::Private,
            m2: false,
            first_touch: false,
            optimal: false,
            threads: 1,
            scale: Scale::Bench,
            prefetch: PrefetchMode::Off,
            jobs: default_jobs(),
            json: None,
            deny_warnings: false,
            config: "optimized".to_string(),
            out: "traces".to_string(),
            epoch: ObsConfig::default().epoch_cycles,
            span_cap: 0,
            plan: None,
            addr: "127.0.0.1:7077".to_string(),
            workers: 2,
            queue_cap: 64,
            cache_cap: 256,
            timeout_ms: 0,
            retry_after_ms: 25,
            metrics_out: None,
            clients: 4,
            repeat: 2,
            max_retries: 10_000,
            drain: false,
            seed: 0,
            budget: 400,
            objective: "offchip,hops".to_string(),
        }
    }
}

impl Options {
    pub fn baseline_kind(&self) -> RunKind {
        if self.first_touch {
            RunKind::FirstTouch
        } else {
            RunKind::Baseline
        }
    }

    pub fn optimized_kind(&self) -> RunKind {
        if self.optimal {
            RunKind::Optimal
        } else {
            RunKind::Optimized
        }
    }
}

/// The simulator-shape flags shared by every simulation subcommand.
const SIM: [&str; 7] = [
    "--page",
    "--cacheline",
    "--shared",
    "--m2",
    "--threads",
    "--scale",
    "--prefetch",
];

/// The flags `cmd` accepts, or `None` for an unknown subcommand.
pub fn allowed_flags(cmd: &str) -> Option<Vec<&'static str>> {
    let mut v: Vec<&'static str> = Vec::new();
    match cmd {
        "apps" => v.push("--scale"),
        "compile" => v.extend(SIM),
        "run" | "links" | "sweep" => {
            v.extend(SIM);
            v.extend(["--first-touch", "--optimal", "--jobs", "--json"]);
        }
        "check" => {
            v.extend(SIM);
            v.extend(["--jobs", "--json", "--deny"]);
        }
        // `est` sweeps the full configuration matrix itself, so it takes
        // no per-config shape flags.
        "est" => v.extend(["--scale", "--jobs", "--json"]),
        // `bench` times every phase over the cacheline machine; the one
        // shape flag it takes turns the prefetch engines on for the sweep.
        "bench" => v.extend(["--scale", "--jobs", "--json", "--prefetch"]),
        // `search` explores placements/granularities itself; the only
        // shape flags it takes set the baseline machine.
        "search" => v.extend([
            "--scale",
            "--jobs",
            "--json",
            "--seed",
            "--budget",
            "--objective",
        ]),
        "trace" => {
            v.extend(SIM);
            v.extend(["--jobs", "--config", "--out", "--epoch", "--span-cap"]);
        }
        "faults" => {
            v.extend(SIM);
            v.extend(["--first-touch", "--optimal", "--json", "--plan"]);
        }
        "trace-validate" => {}
        "serve" => v.extend([
            "--addr",
            "--workers",
            "--queue-cap",
            "--cache-cap",
            "--timeout-ms",
            "--retry-after-ms",
            "--metrics-out",
        ]),
        "load" => v.extend([
            "--addr",
            "--clients",
            "--repeat",
            "--scale",
            "--first-touch",
            "--optimal",
            "--max-retries",
            "--drain",
            "--json",
        ]),
        _ => return None,
    }
    Some(v)
}

/// Whether `flag` consumes the next argument as its value.
fn takes_value(flag: &str) -> bool {
    !matches!(
        flag,
        "--page" | "--cacheline" | "--shared" | "--m2" | "--first-touch" | "--optimal" | "--drain"
    )
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{flag} needs a number, got `{v}`"))
}

/// Applies one flag (with its value, if it takes one) to the options.
fn apply(o: &mut Options, flag: &str, value: Option<&str>) -> Result<(), String> {
    let val = || value.expect("valued flags always arrive with a value");
    match flag {
        "--page" => o.granularity = Granularity::Page,
        "--cacheline" => o.granularity = Granularity::CacheLine,
        "--shared" => o.l2_mode = L2Mode::Shared,
        "--m2" => o.m2 = true,
        "--first-touch" => o.first_touch = true,
        "--optimal" => o.optimal = true,
        "--drain" => o.drain = true,
        "--threads" => {
            o.threads = parse_num(flag, val())?;
            if o.threads == 0 {
                return Err("--threads needs at least 1".into());
            }
        }
        "--jobs" => {
            o.jobs = parse_num(flag, val())?;
            if o.jobs == 0 {
                return Err("--jobs needs at least one worker".into());
            }
        }
        "--json" => o.json = Some(val().to_string()),
        "--config" => o.config = val().to_string(),
        "--out" => o.out = val().to_string(),
        "--epoch" => o.epoch = parse_num(flag, val())?,
        "--span-cap" => o.span_cap = parse_num(flag, val())?,
        "--plan" => o.plan = Some(val().to_string()),
        "--deny" => match val() {
            "warnings" => o.deny_warnings = true,
            other => return Err(format!("--deny only takes `warnings`, got `{other}`")),
        },
        "--scale" => match val() {
            "test" => o.scale = Scale::Test,
            "bench" => o.scale = Scale::Bench,
            other => return Err(format!("--scale takes `test` or `bench`, got `{other}`")),
        },
        "--prefetch" => o.prefetch = PrefetchMode::parse(val())?,
        "--addr" => o.addr = val().to_string(),
        "--workers" => {
            o.workers = parse_num(flag, val())?;
            if o.workers == 0 {
                return Err("--workers needs at least 1".into());
            }
        }
        "--queue-cap" => {
            o.queue_cap = parse_num(flag, val())?;
            if o.queue_cap == 0 {
                return Err("--queue-cap needs at least 1".into());
            }
        }
        "--cache-cap" => o.cache_cap = parse_num(flag, val())?,
        "--timeout-ms" => o.timeout_ms = parse_num(flag, val())?,
        "--retry-after-ms" => o.retry_after_ms = parse_num(flag, val())?,
        "--metrics-out" => o.metrics_out = Some(val().to_string()),
        "--clients" => {
            o.clients = parse_num(flag, val())?;
            if o.clients == 0 {
                return Err("--clients needs at least 1".into());
            }
        }
        "--repeat" => {
            o.repeat = parse_num(flag, val())?;
            if o.repeat == 0 {
                return Err("--repeat needs at least 1".into());
            }
        }
        "--max-retries" => o.max_retries = parse_num(flag, val())?,
        "--seed" => o.seed = parse_num(flag, val())?,
        "--budget" => {
            o.budget = parse_num(flag, val())?;
            if o.budget == 0 {
                return Err("--budget needs at least 1 evaluation".into());
            }
        }
        "--objective" => o.objective = val().to_string(),
        other => return Err(format!("unhandled flag `{other}` (parser bug)")),
    }
    Ok(())
}

/// Parses `args` for subcommand `cmd`. Every error is a usage error:
/// unknown flags name the subcommand and list its valid options, so the
/// wording is identical across `run`, `trace`, `faults`, `check`,
/// `serve`, `load`, and the rest.
pub fn parse(cmd: &str, args: &[String]) -> Result<Options, String> {
    let allowed = allowed_flags(cmd).ok_or_else(|| format!("unknown subcommand `{cmd}`"))?;
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let flag = a.as_str();
        if !allowed.contains(&flag) {
            return Err(if allowed.is_empty() {
                format!("`hoploc {cmd}` takes no options, got `{flag}`")
            } else {
                format!(
                    "`{flag}` is not an option of `hoploc {cmd}`; valid options: {}",
                    allowed.join(", ")
                )
            });
        }
        if takes_value(flag) {
            let v = it
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .as_str();
            apply(&mut o, flag, Some(v))?;
        } else {
            apply(&mut o, flag, None)?;
        }
    }
    Ok(o)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn shared_flags_parse_everywhere() {
        for cmd in ["run", "sweep", "trace", "faults", "compile"] {
            let o = parse(cmd, &args(&["--page", "--shared", "--scale", "test"])).unwrap();
            assert_eq!(o.granularity, Granularity::Page);
            assert_eq!(o.l2_mode, L2Mode::Shared);
            assert_eq!(o.scale, Scale::Test);
        }
    }

    #[test]
    fn unknown_flags_name_the_subcommand_and_options() {
        let err = parse("trace", &args(&["--plan", "3"])).unwrap_err();
        assert!(err.contains("hoploc trace"), "{err}");
        assert!(err.contains("--span-cap"), "{err}");
        let err = parse("serve", &args(&["--shared"])).unwrap_err();
        assert!(err.contains("hoploc serve"), "{err}");
        assert!(err.contains("--queue-cap"), "{err}");
    }

    #[test]
    fn serve_and_load_flags_parse() {
        let o = parse(
            "serve",
            &args(&[
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "3",
                "--queue-cap",
                "5",
                "--cache-cap",
                "7",
                "--timeout-ms",
                "900",
            ]),
        )
        .unwrap();
        assert_eq!((o.workers, o.queue_cap, o.cache_cap), (3, 5, 7));
        assert_eq!(o.timeout_ms, 900);
        let o = parse(
            "load",
            &args(&["--clients", "8", "--repeat", "3", "--drain"]),
        )
        .unwrap();
        assert_eq!((o.clients, o.repeat, o.drain), (8, 3, true));
    }

    #[test]
    fn est_and_bench_flags_parse() {
        for cmd in ["est", "bench"] {
            let o = parse(
                cmd,
                &args(&["--scale", "test", "--jobs", "3", "--json", "-"]),
            )
            .unwrap();
            assert_eq!(o.scale, Scale::Test);
            assert_eq!(o.jobs, 3);
            assert_eq!(o.json.as_deref(), Some("-"));
            let err = parse(cmd, &args(&["--shared"])).unwrap_err();
            assert!(err.contains(&format!("hoploc {cmd}")), "{err}");
        }
    }

    #[test]
    fn search_flags_parse() {
        let o = parse(
            "search",
            &args(&[
                "--scale",
                "test",
                "--seed",
                "7",
                "--budget",
                "120",
                "--objective",
                "offchip:2,hops",
                "--json",
                "-",
            ]),
        )
        .unwrap();
        assert_eq!(o.scale, Scale::Test);
        assert_eq!((o.seed, o.budget), (7, 120));
        assert_eq!(o.objective, "offchip:2,hops");
        assert_eq!(o.json.as_deref(), Some("-"));
        let err = parse("search", &args(&["--m2"])).unwrap_err();
        assert!(err.contains("hoploc search"), "{err}");
        assert!(err.contains("--budget"), "{err}");
        assert!(parse("search", &args(&["--budget", "0"])).is_err());
    }

    #[test]
    fn prefetch_flag_parses_modes() {
        for cmd in ["run", "sweep", "faults", "check", "bench"] {
            let o = parse(cmd, &args(&["--prefetch", "gated"])).unwrap();
            assert_eq!(o.prefetch, PrefetchMode::Gated);
        }
        assert_eq!(
            parse("run", &args(&[])).unwrap().prefetch,
            PrefetchMode::Off
        );
        assert!(parse("run", &args(&["--prefetch", "bogus"])).is_err());
        assert!(parse("serve", &args(&["--prefetch", "stride"])).is_err());
    }

    #[test]
    fn bad_values_are_usage_errors() {
        assert!(parse("run", &args(&["--threads"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse("run", &args(&["--threads", "x"]))
            .unwrap_err()
            .contains("needs a number"));
        assert!(parse("serve", &args(&["--workers", "0"])).is_err());
        assert!(parse("check", &args(&["--deny", "notes"])).is_err());
        assert!(parse("nope", &[])
            .unwrap_err()
            .contains("unknown subcommand"));
    }
}
