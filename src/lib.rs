//! # hoploc
//!
//! An end-to-end reproduction of *Optimizing Off-Chip Accesses in
//! Multicores* (Ding, Tang, Kandemir, Zhang, Kultursay — PLDI 2015): a
//! compiler-guided data-layout transformation that localizes off-chip
//! (main-memory) accesses in NoC-based manycores, together with the full
//! simulation substrate needed to evaluate it.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`affine`] — integer linear algebra and the affine loop-nest IR;
//! * [`layout`] — the localization pass itself (the paper's contribution);
//! * [`noc`] — a 2-D mesh network-on-chip model with XY routing and
//!   link contention;
//! * [`mem`] — memory controllers with FR-FCFS scheduling over DRAM banks;
//! * [`cache`] — private and shared (SNUCA) L2 models with a directory;
//! * [`sim`] — the full-system simulator (cores, OS page allocation,
//!   translation, statistics);
//! * [`workloads`] — the paper's 13 SPEC-OMP/Mantevo applications modelled
//!   as parameterized affine programs;
//! * [`fault`] — seeded, deterministic fault plans (link latency windows,
//!   DRAM bank stalls/transient errors with bounded retry, whole-MC
//!   outages with nearest-live-MC re-homing) for the `hoploc faults`
//!   chaos/resilience tooling;
//! * [`obs`] — deterministic, sim-cycle-timestamped observability:
//!   request-lifecycle spans, a metric registry (counters, gauges,
//!   histograms, windowed series), and Chrome-trace / JSON / TSV
//!   exporters (`hoploc trace`);
//! * [`prefetch`] — per-L2-slice stride/stream prefetch engines with a
//!   perceptron-style off-chip predictor gating issue and an accuracy
//!   throttle (`--prefetch stride|stream|gated|off`);
//! * [`harness`] — the parallel, memoizing suite harness that fans the
//!   (app × run-kind) matrix across threads with bit-identical results;
//! * [`check`] — the static verifier and lint pass (`hoploc check`):
//!   layout legality, parallelization races, and affine bounds
//!   diagnostics with stable `HLxxxx` codes;
//! * [`est`] — the static locality & contention estimator (`hoploc
//!   est`): predicts off-chip fraction, expected hop count, and per-MC
//!   queue pressure from access matrices and layout plans alone, emits
//!   the `HL10xx` predicted-performance diagnostics, and cross-validates
//!   itself against the cycle simulator by Spearman rank correlation;
//! * [`search`] — seeded, deterministic design-space search (`hoploc
//!   search`): simulated annealing plus exact branch-and-bound over MC
//!   placements, L2-to-MC cluster maps, and layout-plan parameters,
//!   scored by the static estimator with top candidates verified by the
//!   cycle simulator against the paper's fixed placements;
//! * [`serve`] — simulation-as-a-service (`hoploc serve` / `hoploc
//!   load`): a std-only TCP job server with a bounded queue, explicit
//!   backpressure, in-flight coalescing, a bounded LRU result cache keyed
//!   by canonical job hash, per-job timeouts, and graceful drain — served
//!   results are byte-identical to direct harness runs.
//!
//! See `examples/quickstart.rs` for the fastest way to run an optimized
//! vs. baseline comparison, and `hoploc sweep --jobs N` for the parallel
//! suite sweep.

#![forbid(unsafe_code)]

pub use hoploc_affine as affine;
pub use hoploc_cache as cache;
pub use hoploc_check as check;
pub use hoploc_est as est;
pub use hoploc_fault as fault;
pub use hoploc_harness as harness;
pub use hoploc_layout as layout;
pub use hoploc_mem as mem;
pub use hoploc_noc as noc;
pub use hoploc_obs as obs;
pub use hoploc_prefetch as prefetch;
pub use hoploc_search as search;
pub use hoploc_serve as serve;
pub use hoploc_sim as sim;
pub use hoploc_workloads as workloads;
