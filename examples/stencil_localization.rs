//! The paper's Figure 9 walkthrough: a transposed stencil, step by step.
//!
//! ```sh
//! cargo run --release --example stencil_localization
//! ```
//!
//! Shows the three stages of the transformation on the running example —
//! the original parallel code, the code after the Data-to-Core mapping
//! (`r⃗' = U·r⃗`), and the strip-mined/permuted customization — and then
//! verifies element-by-element that the customized layout sends every
//! owner's off-chip accesses to its own cluster's controller.

use hoploc::affine::{
    AffineAccess, ArrayDecl, ArrayId, ArrayRef, IMat, IVec, Loop, LoopNest, Program, Statement,
};
use hoploc::layout::{codegen, determine_data_to_core, optimize_program, PassConfig};
use hoploc::noc::{L2ToMcMapping, McId, McPlacement, Mesh};

fn main() {
    // Figure 9(a): Z[j][i] ± neighbours under an i-parallel (i, j) nest.
    let mut p = Program::new("fig9");
    let z = p.add_array(ArrayDecl::new("Z", vec![512, 512], 8));
    let a = IMat::from_rows(&[&[0, 1], &[1, 0]]);
    p.add_nest(LoopNest::new(
        vec![Loop::constant(2, 511), Loop::constant(2, 511)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::write(z, AffineAccess::new(a.clone(), IVec::zeros(2))),
                ArrayRef::read(z, AffineAccess::new(a.clone(), IVec::new(vec![-1, 0]))),
                ArrayRef::read(z, AffineAccess::new(a.clone(), IVec::zeros(2))),
                ArrayRef::read(z, AffineAccess::new(a, IVec::new(vec![1, 0]))),
            ],
            2,
        )],
        1,
    ));

    println!("--- (a) original parallel code ---");
    println!("{}", codegen::render_original(&p, &p.nests()[0]));

    // §5.2: solve Bᵀ gᵥᵀ = 0 and complete into U.
    let d2c = determine_data_to_core(&p, z).expect("stencil is partitionable");
    println!("--- Data-to-Core mapping ---");
    println!("g_v = {}   (partitioning row)", d2c.g_v);
    println!("U   =\n{}", d2c.u);
    println!(
        "references satisfied: {}/{}\n",
        d2c.satisfied_refs, d2c.total_refs
    );

    println!("--- (b) after determining the Data-to-Core mapping ---");
    let d2cs = vec![Some(d2c)];
    println!("{}", codegen::render_data_to_core(&p, &p.nests()[0], &d2cs));

    // §5.3: customize for the 8×8 mesh with four corner MCs (M1 mapping).
    let mesh = Mesh::new(8, 8);
    let mapping = L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Corners);
    let layout = optimize_program(&p, &mapping, PassConfig::default());
    println!("--- (c) after layout customization ---");
    println!(
        "{}",
        codegen::render_customized(&p, &p.nests()[0], &d2cs, layout.layouts())
    );

    // Verify the placement: every element's interleave unit must map to a
    // controller serving its owner's cluster.
    let l = layout.layout(ArrayId(0));
    let p_elems = l.unit_elems();
    let mut checked = 0u64;
    let mut total_dist = 0u64;
    for a0 in (0..512).step_by(13) {
        for a1 in (0..512).step_by(7) {
            let owner = l.owner_thread(&[a0, a1]).expect("localized layout");
            let node = layout.binding().node_of(owner);
            let unit = l.place(&[a0, a1]) / p_elems;
            let mc = McId((unit % mapping.num_mcs() as i64) as u16);
            assert!(
                mapping.mcs_of_node(node).contains(&mc),
                "element ({a0},{a1}) escaped its cluster"
            );
            total_dist += mesh.hop_distance(node, mapping.mc_node(mc)) as u64;
            checked += 1;
        }
    }
    println!("verified {checked} sampled elements: every unit on its owner's controller");
    println!(
        "average owner-to-controller distance: {:.2} hops (mesh diameter: 14)",
        total_dist as f64 / checked as f64
    );
}
