//! Quickstart: optimize one application's layout and measure the effect.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the `swim` workload model, runs it on the simulated 8×8 manycore
//! twice — with the original layouts and with the compiler-localized
//! layouts — and prints the four metrics the paper reports.

use hoploc::layout::Granularity;
use hoploc::noc::{L2ToMcMapping, McPlacement};
use hoploc::sim::{Improvement, SimConfig};
use hoploc::workloads::{run_app, swim, RunKind, Scale};

fn main() {
    // Table 1's machine (capacity-scaled; see DESIGN.md §7), cache-line
    // interleaving of physical addresses across the four corner MCs.
    let sim = SimConfig {
        granularity: Granularity::CacheLine,
        ..SimConfig::scaled()
    };

    // The user-provided L2-to-MC mapping: the paper's default M1 —
    // quadrant clusters, each bound to its nearest corner controller.
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &McPlacement::Corners);

    let app = swim(Scale::Bench);
    println!(
        "application: {} ({} arrays, {} nests)",
        app.name(),
        app.program.arrays().len(),
        app.program.nests().len()
    );

    println!("\nsimulating baseline (original layouts)...");
    let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
    println!(
        "  exec: {} cycles, off-chip: {} accesses ({:.1}%), avg off-chip hops: {:.1}",
        base.exec_cycles,
        base.offchip_accesses,
        base.offchip_fraction() * 100.0,
        base.net.off_chip.avg_hops()
    );

    println!("\nsimulating optimized (localized layouts)...");
    let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
    println!(
        "  exec: {} cycles, off-chip: {} accesses ({:.1}%), avg off-chip hops: {:.1}",
        opt.exec_cycles,
        opt.offchip_accesses,
        opt.offchip_fraction() * 100.0,
        opt.net.off_chip.avg_hops()
    );

    let imp = Improvement::between(&base, &opt);
    println!("\nreductions (optimized vs baseline):");
    println!(
        "  on-chip network latency : {:>6.1}%",
        imp.onchip_net * 100.0
    );
    println!(
        "  off-chip network latency: {:>6.1}%",
        imp.offchip_net * 100.0
    );
    println!("  memory latency          : {:>6.1}%", imp.memory * 100.0);
    println!(
        "  execution time          : {:>6.1}%",
        imp.exec_time * 100.0
    );
}
