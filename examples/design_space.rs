//! Exploring the locality-vs-parallelism design space of §4: L2-to-MC
//! mappings, the compiler's mapping-selection analysis, and controller
//! placements.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use hoploc::harness::Suite;
use hoploc::layout::{mapping_cost, select_mapping, Granularity, SelectModel};
use hoploc::noc::{L2ToMcMapping, McPlacement, Mesh};
use hoploc::sim::{RunStats, SimConfig};
use hoploc::workloads::{fma3d, wupwise, RunKind, Scale};

fn main() {
    let mesh = Mesh::new(8, 8);
    let m1 = L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Corners);
    let m2 = L2ToMcMapping::halves(mesh, &McPlacement::Corners);

    println!("--- mapping geometry ---");
    for (name, m) in [("M1 (quadrants, k=1)", &m1), ("M2 (halves, k=2)", &m2)] {
        println!(
            "{name}: {} clusters x {} cores, avg distance-to-MC {:.2} hops, MLP degree {}",
            m.num_clusters(),
            m.cores_per_cluster(),
            m.avg_distance_to_mc(),
            m.mlp_degree()
        );
    }

    println!("\n--- compiler mapping selection (§4) ---");
    let model = SelectModel::default();
    let candidates = [m1.clone(), m2.clone()];
    for app in [wupwise(Scale::Bench), fma3d(Scale::Bench)] {
        let c1 = mapping_cost(&m1, &app.profile, &model);
        let c2 = mapping_cost(&m2, &app.profile, &model);
        let pick = select_mapping(&candidates, &app.profile, &model);
        println!(
            "{:<8} estimated cost: M1 {:>6.1}cy, M2 {:>6.1}cy -> compiler picks {}",
            app.name(),
            c1,
            c2,
            if pick == 0 { "M1" } else { "M2" }
        );
    }

    println!("\n--- measured: MC placements (Figure 26) ---");
    // One single-app suite per placement; base and optimized run in
    // parallel inside each.
    let saving = |suite: &Suite| -> f64 {
        let recs = suite.run_full(&[RunKind::Baseline, RunKind::Optimized], 2);
        RunStats::reduction(
            recs[1].stats.exec_cycles as f64,
            recs[0].stats.exec_cycles as f64,
        ) * 100.0
    };
    for (name, placement) in [
        ("P1 corners", McPlacement::Corners),
        ("P2 edge midpoints", McPlacement::EdgeMidpoints),
        ("P3 diagonal", McPlacement::Diagonal),
    ] {
        let sim = SimConfig {
            granularity: Granularity::CacheLine,
            placement: placement.clone(),
            ..SimConfig::scaled()
        };
        let mapping = L2ToMcMapping::nearest_cluster(mesh, &placement);
        let suite = Suite::new(vec![wupwise(Scale::Bench)], mapping, sim);
        println!(
            "{name:<18} avg distance {:.2} hops, wupwise exec saving {:>5.1}%",
            suite.mapping().avg_distance_to_mc(),
            saving(&suite)
        );
    }
}
