//! Indexed references and the §5.4 approximation, on an hpccg-style SpMV.
//!
//! ```sh
//! cargo run --release --example spmv_indexed
//! ```
//!
//! Builds two sparse matrix-vector products: one whose column-index table
//! is a narrow band (approximates well → the gathered vector gets a
//! localized layout) and one with a scrambled table (approximation fails →
//! the pass leaves the array alone, a performance decision, never a
//! correctness one). Then measures both end to end.

use hoploc::affine::{
    AffineAccess, AffineExpr, ArrayDecl, ArrayRef, IMat, IVec, Loop, LoopNest, Program, Statement,
};
use hoploc::layout::{approximate_table, optimize_program, Granularity, PassConfig};
use hoploc::noc::{L2ToMcMapping, McPlacement};
use hoploc::sim::{AddressSpace, PagePolicy, SimConfig, Simulator};
use hoploc::workloads::{generate_traces, TraceGen};

fn spmv(name: &str, table: Vec<i64>, rows: i64, nnz_per_row: i64) -> Program {
    let mut p = Program::new(name);
    let x = p.add_array(ArrayDecl::new("x", vec![rows], 8));
    let y = p.add_array(ArrayDecl::new("y", vec![rows], 8));
    let col_idx = p.add_table(table);
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, rows), Loop::constant(0, nnz_per_row)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::indexed_read(x, col_idx, AffineExpr::new(vec![nnz_per_row, 1], 0)),
                ArrayRef::write(
                    y,
                    AffineAccess::new(IMat::from_rows(&[&[1, 0]]), IVec::zeros(1)),
                ),
            ],
            3,
        )],
        10,
    ));
    p
}

fn main() {
    let rows = 64 * 1024i64;
    let nnz_per_row = 8i64;
    let nnz = rows * nnz_per_row;

    // A banded matrix: col ≈ row, small jitter — the "dense access
    // pattern" §5.4 extracts by profiling.
    let banded: Vec<i64> = (0..nnz)
        .map(|k| (k / nnz_per_row + (k * 37 % 41) - 20).clamp(0, rows - 1))
        .collect();
    // A scrambled matrix: no affine structure at all.
    let scrambled: Vec<i64> = (0..nnz).map(|k| (k * 2654435761 % rows).abs()).collect();

    for (label, table) in [("banded", banded), ("scrambled", scrambled)] {
        let fit = approximate_table(&table, rows);
        println!(
            "{label}: fitted index ≈ {:.3}·pos + {:.1}, inaccuracy {:.0}%",
            fit.slope,
            fit.intercept,
            fit.inaccuracy * 100.0
        );

        let program = spmv(label, table, rows, nnz_per_row);
        let sim = SimConfig {
            granularity: Granularity::CacheLine,
            ..SimConfig::scaled()
        };
        let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &McPlacement::Corners);
        let layout = optimize_program(&program, &mapping, PassConfig::default());
        for report in layout.reports() {
            println!(
                "  array {:>2}: optimized={} ({})",
                report.name,
                report.optimized,
                report
                    .reason
                    .as_ref()
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "localized".to_string())
            );
        }

        let space = AddressSpace::build(&program, &layout, 0);
        let gen = TraceGen::tuned(2);
        let traces = generate_traces(&program, &layout, &space, &gen);
        let stats =
            Simulator::new(sim.clone(), mapping.clone(), PagePolicy::Interleaved).run(&traces);
        println!(
            "  simulated: {} accesses, off-chip avg {:.1} hops, exec {} cycles\n",
            stats.total_accesses,
            stats.net.off_chip.avg_hops(),
            stats.exec_cycles
        );
    }
}
