//! Golden calibration tests: bench-scale regression guards for the
//! reproduced figures. Expensive (each runs a slice of the full sweep),
//! so they are `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test calibration_golden -- --ignored
//! ```
//!
//! Tolerances are deliberately wide — these catch calibration *breakage*
//! (a sign flip, a collapsed mechanism), not noise.

use hoploc::layout::Granularity;
use hoploc::noc::L2ToMcMapping;
use hoploc::sim::{Improvement, SimConfig};
use hoploc::workloads::{all_apps, run_app, RunKind, Scale};

fn setup(granularity: Granularity) -> (SimConfig, L2ToMcMapping) {
    let sim = SimConfig {
        granularity,
        ..SimConfig::scaled()
    };
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
    (sim, mapping)
}

fn suite_average(granularity: Granularity) -> Improvement {
    let (sim, mapping) = setup(granularity);
    let apps = all_apps(Scale::Bench);
    let mut acc = Improvement::default();
    for app in &apps {
        let base = run_app(app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(app, &mapping, &sim, RunKind::Optimized);
        let i = Improvement::between(&base, &opt);
        acc.onchip_net += i.onchip_net;
        acc.offchip_net += i.offchip_net;
        acc.memory += i.memory;
        acc.exec_time += i.exec_time;
    }
    let n = apps.len() as f64;
    Improvement {
        onchip_net: acc.onchip_net / n,
        offchip_net: acc.offchip_net / n,
        memory: acc.memory / n,
        exec_time: acc.exec_time / n,
    }
}

#[test]
#[ignore = "bench-scale: run with -- --ignored"]
fn golden_fig16_headline() {
    // Paper: 20.5% exec, 66.4% off-chip net. Calibrated: 21.7% / 63.3%.
    let avg = suite_average(Granularity::CacheLine);
    assert!(
        (0.12..0.32).contains(&avg.exec_time),
        "fig16 exec average drifted: {:.3}",
        avg.exec_time
    );
    assert!(
        avg.offchip_net > 0.40,
        "fig16 off-chip net average collapsed: {:.3}",
        avg.offchip_net
    );
}

#[test]
#[ignore = "bench-scale: run with -- --ignored"]
fn golden_fig14_page() {
    // Paper: 17.1% exec. Calibrated: 20.4%.
    let avg = suite_average(Granularity::Page);
    assert!(
        (0.10..0.32).contains(&avg.exec_time),
        "fig14 exec average drifted: {:.3}",
        avg.exec_time
    );
}

#[test]
#[ignore = "bench-scale: run with -- --ignored"]
fn golden_fig18_pressure_apps_top_two() {
    let (sim, mapping) = setup(Granularity::CacheLine);
    let mut occ: Vec<(String, f64)> = all_apps(Scale::Bench)
        .into_iter()
        .map(|app| {
            let s = run_app(&app, &mapping, &sim, RunKind::Optimized);
            (app.name().to_string(), s.bank_queue_occupancy())
        })
        .collect();
    occ.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let top2: Vec<&str> = occ.iter().take(2).map(|(n, _)| n.as_str()).collect();
    assert!(
        top2.contains(&"fma3d") && top2.contains(&"minighost"),
        "fig18 top two drifted: {occ:?}"
    );
}

#[test]
#[ignore = "bench-scale: run with -- --ignored"]
fn golden_fig23_first_touch() {
    // Paper: 12.3% average over first-touch; ≈0 for the friendly trio.
    let (sim, mapping) = setup(Granularity::Page);
    let apps = all_apps(Scale::Bench);
    let mut sum = 0.0;
    for app in &apps {
        let ft = run_app(app, &mapping, &sim, RunKind::FirstTouch);
        let opt = run_app(app, &mapping, &sim, RunKind::Optimized);
        let gain = (ft.exec_cycles as f64 - opt.exec_cycles as f64) / ft.exec_cycles as f64;
        if app.first_touch_friendly {
            assert!(
                gain.abs() < 0.10,
                "{} is first-touch friendly but gained {gain:.3}",
                app.name()
            );
        }
        sum += gain;
    }
    let avg = sum / apps.len() as f64;
    assert!(
        (0.05..0.25).contains(&avg),
        "fig23 average drifted: {avg:.3}"
    );
}

#[test]
#[ignore = "bench-scale: run with -- --ignored"]
fn golden_fig15_offchip_cdf_shift() {
    // Off-chip requests within 4 links must improve substantially
    // (paper 22%→31%; calibrated 23%→74%).
    let (sim, mapping) = setup(Granularity::CacheLine);
    let mut base4 = 0.0;
    let mut opt4 = 0.0;
    let mut n = 0.0;
    for app in all_apps(Scale::Bench) {
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        if base.net.off_chip.messages > 1000 {
            base4 += base.net.off_chip.cdf()[4];
            opt4 += opt.net.off_chip.cdf()[4];
            n += 1.0;
        }
    }
    assert!(n >= 8.0);
    assert!(
        opt4 / n > base4 / n + 0.15,
        "fig15 CDF shift collapsed: {:.2} -> {:.2}",
        base4 / n,
        opt4 / n
    );
}
