//! `hoploc check` over the bundled suite: every application must verify
//! clean (no errors, no warnings) in all four layout configurations, and
//! injected defects must be caught with their documented HL codes.

use hoploc::check::{
    check_layout, check_program, count, render_json, should_fail, verify_array_layout, CheckConfig,
    Code, Severity,
};
use hoploc::layout::{optimize_program, Granularity, L2Mode, PassConfig};
use hoploc::noc::L2ToMcMapping;
use hoploc::sim::SimConfig;
use hoploc::workloads::{all_apps, Scale};

fn configs() -> Vec<(&'static str, PassConfig)> {
    let mut out = Vec::new();
    for (l2_name, l2_mode) in [("private", L2Mode::Private), ("shared", L2Mode::Shared)] {
        for (g_name, granularity) in [
            ("cacheline", Granularity::CacheLine),
            ("page", Granularity::Page),
        ] {
            out.push((
                match (l2_name, g_name) {
                    ("private", "cacheline") => "private/cacheline",
                    ("private", "page") => "private/page",
                    ("shared", "cacheline") => "shared/cacheline",
                    _ => "shared/page",
                },
                PassConfig {
                    granularity,
                    l2_mode,
                    ..PassConfig::default()
                },
            ));
        }
    }
    out
}

#[test]
fn suite_checks_clean_in_every_configuration() {
    let sim = SimConfig::default();
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
    let cfg = CheckConfig::default();
    let mut gating = Vec::new();
    for app in all_apps(Scale::Test) {
        let mut diags = check_program(&app.program, &cfg);
        for (label, pass) in configs() {
            let layout = optimize_program(&app.program, &mapping, pass);
            diags.extend(check_layout(&app.program, &layout, label, &cfg));
        }
        for d in diags {
            if d.severity() >= Severity::Warning {
                gating.push(format!("{}: {:?}", app.name(), d));
            }
        }
    }
    assert!(
        gating.is_empty(),
        "suite must check clean, found:\n{}",
        gating.join("\n")
    );
}

#[test]
#[ignore = "slow: full Bench-scale enumeration of every nest"]
fn suite_checks_clean_at_bench_scale() {
    let sim = SimConfig::default();
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
    let cfg = CheckConfig::default();
    let mut gating = Vec::new();
    for app in all_apps(Scale::Bench) {
        let mut diags = check_program(&app.program, &cfg);
        for (label, pass) in configs() {
            let layout = optimize_program(&app.program, &mapping, pass);
            diags.extend(check_layout(&app.program, &layout, label, &cfg));
        }
        for d in diags {
            if d.severity() >= Severity::Warning {
                gating.push(format!("{}: {:?}", app.name(), d));
            }
        }
    }
    assert!(
        gating.is_empty(),
        "suite must check clean, found:\n{}",
        gating.join("\n")
    );
}

#[test]
fn aliasing_plan_is_rejected() {
    use hoploc::affine::{ArrayDecl, IMat};
    use hoploc::layout::ArrayLayout;
    let decl = ArrayDecl::new("X", vec![64, 32], 8);
    let plan = ArrayLayout::from_parts(
        &decl,
        IMat::identity(2),
        256,
        vec![0; 32].into_iter().chain(vec![1; 32]).collect(),
        vec![vec![0], vec![0]],
        4,
        4,
    );
    let d = verify_array_layout(&decl, &plan, "fixture", &CheckConfig::default());
    let codes: Vec<_> = d.iter().map(|x| x.code).collect();
    assert!(codes.contains(&Code::SlotAliasing), "{d:?}");
    assert!(codes.contains(&Code::PlacementCollision), "{d:?}");
    assert!(should_fail(&d, false));
}

#[test]
fn illegal_parallel_dim_is_rejected() {
    use hoploc::affine::{
        AffineAccess, ArrayDecl, ArrayRef, IMat, IVec, Loop, LoopNest, Program, Statement,
    };
    // A recurrence along the parallel dimension, far beyond any halo.
    let mut p = Program::new("bad-parallel");
    let x = p.add_array(ArrayDecl::new("X", vec![256], 8));
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, 256)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::write(x, AffineAccess::identity(1)),
                ArrayRef::read(
                    x,
                    AffineAccess::new(IMat::identity(1), IVec::new(vec![-64])),
                ),
            ],
            1,
        )],
        1,
    ));
    let d = check_program(&p, &CheckConfig::default());
    assert!(
        d.iter()
            .any(|x| x.code == Code::CarriedDependenceSpansChunks),
        "{d:?}"
    );
    assert!(should_fail(&d, false));
}

#[test]
fn deny_warnings_gates_and_json_stays_wellformed() {
    use hoploc::affine::{
        AffineAccess, ArrayDecl, ArrayRef, IMat, IVec, Loop, LoopNest, Program, Statement,
    };
    // A stencil reaching one past the extent: a warning, not an error.
    let mut p = Program::new("edge");
    let x = p.add_array(ArrayDecl::new("X", vec![64], 8));
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, 64)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::write(x, AffineAccess::identity(1)),
                ArrayRef::read(x, AffineAccess::new(IMat::identity(1), IVec::new(vec![1]))),
            ],
            1,
        )],
        1,
    ));
    let d = check_program(&p, &CheckConfig::default());
    let c = count(&d);
    assert!(c.errors == 0 && c.warnings > 0, "{d:?}");
    assert!(!should_fail(&d, false));
    assert!(should_fail(&d, true));
    let json = render_json(&d);
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced JSON"
    );
    assert!(json.contains("\"HL0301\""), "{json}");
}
