//! Chaos + differential integration suite for the fault-injection layer.
//!
//! Three families of guarantees, each asserted over the full test-scale
//! application suite:
//!
//! 1. **Chaos conservation / termination** — for ≥ 32 seeded fault plans
//!    per app (cycling the whole `FaultRates::at_level` intensity ladder),
//!    every run terminates without the HL0900 backstop, consumes exactly
//!    the clean run's dynamic work, and conserves memory requests:
//!    `Σ served + Σ dropped == off-chip issues + writebacks` — no request
//!    is lost or duplicated by retry, re-homing, or dropping.
//!
//! 2. **Zero-fault differential** — an installed-but-empty plan is
//!    provably inert: bit-identical `RunStats` and byte-identical obs
//!    artifacts (Chrome trace + metrics JSON) versus the unfaulted path.
//!
//! 3. **Parallel determinism** — the same plan set swept with `--jobs 1`
//!    and `--jobs N` yields bit-identical records.
//!
//! The seed base defaults to 1 and can be shifted with the
//! `HOPLOC_CHAOS_SEED_BASE` environment variable to explore fresh plan
//! populations without editing the test.

use hoploc::fault::{FaultPlan, FaultRates};
use hoploc::harness::{default_jobs, fault_topo, RunSpec, Suite};
use hoploc::layout::Granularity;
use hoploc::noc::L2ToMcMapping;
use hoploc::obs::ObsConfig;
use hoploc::sim::{RunStats, SimConfig};
use hoploc::workloads::{all_apps, RunKind, Scale};

/// Seeded plans per application (the issue's floor).
const PLANS_PER_APP: usize = 32;

fn setup() -> (SimConfig, L2ToMcMapping) {
    let sim = SimConfig {
        granularity: Granularity::CacheLine,
        ..SimConfig::scaled()
    };
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
    (sim, mapping)
}

fn seed_base() -> u64 {
    std::env::var("HOPLOC_CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The per-plan conservation + termination invariants, shared by the chaos
/// tests below.
fn assert_conserved(app: &str, seed: u64, clean: &RunStats, faulted: &RunStats) {
    assert_eq!(
        faulted.total_accesses, clean.total_accesses,
        "{app} seed {seed}: faults changed the dynamic work"
    );
    assert_eq!(
        faulted.backstop_flushes, 0,
        "{app} seed {seed}: run only terminated via the HL0900 backstop"
    );
    let served: u64 = faulted.mc.iter().map(|m| m.served).sum();
    let dropped: u64 = faulted.mc.iter().map(|m| m.dropped).sum();
    let issued = faulted.offchip_accesses + faulted.writebacks;
    assert_eq!(
        served + dropped,
        issued,
        "{app} seed {seed}: served {served} + dropped {dropped} != issued {issued} \
         (requests lost or duplicated)"
    );
    assert_eq!(
        dropped, faulted.dropped_requests,
        "{app} seed {seed}: controller and simulator disagree on drops"
    );
    // Retries and drops are both transient-error outcomes; every error is
    // accounted to exactly one of them.
    for (i, m) in faulted.mc.iter().enumerate() {
        assert_eq!(
            m.transient_errors,
            m.retries + m.dropped,
            "{app} seed {seed}: MC{i} mislaid a transient error"
        );
    }
}

#[test]
fn chaos_every_app_survives_32_seeded_plans() {
    let (sim, mapping) = setup();
    let suite = Suite::new(all_apps(Scale::Test), mapping, sim);
    let topo = fault_topo(suite.sim());
    let base = seed_base();
    let jobs = default_jobs();
    let mut injected_somewhere = false;
    for (i, app) in suite.apps().iter().enumerate() {
        let spec = RunSpec {
            app: i,
            kind: RunKind::Optimized,
        };
        let clean = suite.run_one(spec);
        // Placement horizon matched to this app's run length so the
        // windows actually overlap the run; intensity cycles the whole
        // ladder, from quiet (level 0) through severe (level 6).
        let plans: Vec<FaultPlan> = (0..PLANS_PER_APP)
            .map(|p| {
                let rates =
                    FaultRates::at_level((p % 7) as u32).with_horizon(clean.exec_cycles.max(1));
                FaultPlan::from_seed(base + (i * PLANS_PER_APP + p) as u64, &topo, &rates)
            })
            .collect();
        for plan in &plans {
            plan.validate(&topo).expect("generated plan must fit");
        }
        let runs = suite.run_fault_sweep(spec, &plans, jobs);
        assert_eq!(runs.len(), plans.len());
        for (p, faulted) in runs.iter().enumerate() {
            assert_conserved(
                app.name(),
                base + (i * PLANS_PER_APP + p) as u64,
                &clean,
                faulted,
            );
            let retries: u64 = faulted.mc.iter().map(|m| m.retries).sum();
            if retries > 0 || faulted.dropped_requests > 0 || faulted.rehomed_requests > 0 {
                injected_somewhere = true;
            }
        }
    }
    // The sweep is vacuous if no plan ever perturbed a run.
    assert!(
        injected_somewhere,
        "no retries, drops, or re-homes across the whole chaos sweep"
    );
}

#[test]
fn zero_fault_plan_is_bit_identical_to_unfaulted_path() {
    let (sim, mapping) = setup();
    let suite = Suite::new(all_apps(Scale::Test), mapping, sim);
    let none = FaultPlan::none();
    for (i, app) in suite.apps().iter().enumerate() {
        for kind in [RunKind::Baseline, RunKind::Optimized] {
            let spec = RunSpec { app: i, kind };
            let clean = suite.run_one(spec);
            let faulted = suite.run_one_faulted(spec, &none);
            // Full-struct equality: every counter, histogram, and
            // floating-point utilization.
            assert_eq!(
                clean,
                faulted,
                "{} {kind:?}: empty plan perturbed the run",
                app.name()
            );
        }
    }
    // And the observability artifacts are byte-identical, not just the
    // stats: the fault layer may not move, rename, or reorder a single
    // trace event or metric when its plan is empty.
    let spec = RunSpec {
        app: 0,
        kind: RunKind::Baseline,
    };
    let (clean_stats, clean_rep) = suite.run_one_traced(spec, ObsConfig::default());
    let (fault_stats, fault_rep) = suite.run_one_faulted_traced(spec, &none, ObsConfig::default());
    assert_eq!(clean_stats, fault_stats);
    assert_eq!(
        clean_rep.chrome_trace_json(),
        fault_rep.chrome_trace_json(),
        "empty plan changed the trace bytes"
    );
    assert_eq!(
        clean_rep.metrics_json(),
        fault_rep.metrics_json(),
        "empty plan changed the metrics bytes"
    );
}

#[test]
fn fault_sweep_identical_across_job_counts() {
    let (sim, mapping) = setup();
    let suite = Suite::new(all_apps(Scale::Test), mapping, sim);
    let topo = fault_topo(suite.sim());
    let base = seed_base();
    // A couple of apps with real off-chip traffic, severe plans so the
    // retry/re-home machinery is actually exercised on both arms.
    for app in [0usize, 1] {
        let spec = RunSpec {
            app,
            kind: RunKind::Optimized,
        };
        let clean = suite.run_one(spec);
        let rates = FaultRates::severe().with_horizon(clean.exec_cycles.max(1));
        let plans: Vec<FaultPlan> = (0..8)
            .map(|p| FaultPlan::from_seed(base + 9000 + p, &topo, &rates))
            .collect();
        let seq = suite.run_fault_sweep(spec, &plans, 1);
        let par = suite.run_fault_sweep(spec, &plans, default_jobs().max(2));
        assert_eq!(
            seq, par,
            "app {app}: fault sweep diverged across job counts"
        );
    }
}

#[test]
fn faulted_traced_run_is_deterministic() {
    // Same plan, same seed → same bytes, even with the obs layer
    // recording every retry, stall, re-home, and drop.
    let (sim, mapping) = setup();
    let suite = Suite::new(all_apps(Scale::Test), mapping, sim);
    let topo = fault_topo(suite.sim());
    let spec = RunSpec {
        app: 0,
        kind: RunKind::Baseline,
    };
    let clean = suite.run_one(spec);
    let rates = FaultRates::severe().with_horizon(clean.exec_cycles.max(1));
    let plan = FaultPlan::from_seed(seed_base() + 4242, &topo, &rates);
    let (s1, r1) = suite.run_one_faulted_traced(spec, &plan, ObsConfig::default());
    let (s2, r2) = suite.run_one_faulted_traced(spec, &plan, ObsConfig::default());
    assert_eq!(s1, s2);
    assert_eq!(r1.chrome_trace_json(), r2.chrome_trace_json());
    assert_eq!(r1.metrics_json(), r2.metrics_json());
    // The traced arm also mirrors the untraced one.
    let untraced = suite.run_one_faulted(spec, &plan);
    assert_eq!(s1, untraced, "tracing perturbed a faulted run");
}

#[test]
fn plan_text_round_trip_preserves_behavior() {
    // A plan that went through render → parse injects identically; this
    // is what makes `hoploc faults <app> --plan <file>` reproducible.
    let (sim, mapping) = setup();
    let suite = Suite::new(all_apps(Scale::Test), mapping, sim);
    let topo = fault_topo(suite.sim());
    let spec = RunSpec {
        app: 2,
        kind: RunKind::Optimized,
    };
    let clean = suite.run_one(spec);
    let rates = FaultRates::moderate().with_horizon(clean.exec_cycles.max(1));
    let plan = FaultPlan::from_seed(seed_base() + 77, &topo, &rates);
    let reparsed = FaultPlan::parse(&plan.render()).expect("rendered plan must parse");
    assert_eq!(plan, reparsed);
    assert_eq!(
        suite.run_one_faulted(spec, &plan),
        suite.run_one_faulted(spec, &reparsed)
    );
}
