//! Differential + chaos integration suite for the prefetch layer.
//!
//! Three families of guarantees over the test-scale application suite:
//!
//! 1. **Off-mode differential** — `--prefetch off` (the default) is
//!    provably inert regardless of the other prefetch knobs: bit-identical
//!    `RunStats` across the full (app × kind) matrix and byte-identical
//!    obs artifacts (Chrome trace + metrics JSON) versus the seed engine.
//!
//! 2. **Parallel determinism** — a gated-prefetch matrix swept with
//!    `--jobs 1` and `--jobs N` yields bit-identical records, including
//!    every prefetch counter.
//!
//! 3. **Chaos conservation / termination** — with gated prefetch on and
//!    seeded fault plans cycling the intensity ladder, every run
//!    terminates without the HL0900 backstop and conserves *demand*
//!    requests exactly as the fault suite states it
//!    (`Σ served + Σ dropped == off-chip issues + writebacks`):
//!    prefetch-class requests are exempt, accounted only under
//!    `pf_served`/`pf_dropped`, and are never retried or re-homed.

use hoploc::fault::{FaultPlan, FaultRates};
use hoploc::harness::{default_jobs, fault_topo, RunSpec, Suite};
use hoploc::layout::Granularity;
use hoploc::noc::L2ToMcMapping;
use hoploc::obs::ObsConfig;
use hoploc::sim::{PrefetchConfig, PrefetchMode, SimConfig};
use hoploc::workloads::{all_apps, RunKind, Scale};

const KINDS: [RunKind; 4] = [
    RunKind::Baseline,
    RunKind::Optimized,
    RunKind::FirstTouch,
    RunKind::Optimal,
];

fn suite_with(prefetch: PrefetchConfig) -> Suite {
    let sim = SimConfig {
        granularity: Granularity::CacheLine,
        prefetch,
        ..SimConfig::scaled()
    };
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
    Suite::new(all_apps(Scale::Test), mapping, sim)
}

#[test]
fn prefetch_off_is_bit_identical_to_the_seed_engine() {
    let seed = suite_with(PrefetchConfig::default());
    // Off must be inert even with aggressive settings on every other
    // knob: mode Off means no prefetch state exists at all.
    let off = suite_with(PrefetchConfig {
        mode: PrefetchMode::Off,
        degree: 16,
        distance: 8,
        queue_cap: 1,
        ..PrefetchConfig::default()
    });
    let specs = seed.full_matrix(&KINDS);
    let jobs = default_jobs();
    let a = seed.run_matrix(&specs, jobs);
    let b = off.run_matrix(&specs, jobs);
    for ((x, y), spec) in a.iter().zip(&b).zip(&specs) {
        assert_eq!(x.stats, y.stats, "off-mode prefetch perturbed {spec:?}");
        assert!(
            y.stats.prefetch.is_empty(),
            "{spec:?}: off mode must record no prefetch activity"
        );
    }
    // Artifacts too: not a single trace event or metric may move.
    let spec = RunSpec {
        app: 0,
        kind: RunKind::Optimized,
    };
    let (s1, r1) = seed.run_one_traced(spec, ObsConfig::default());
    let (s2, r2) = off.run_one_traced(spec, ObsConfig::default());
    assert_eq!(s1, s2);
    assert_eq!(
        r1.chrome_trace_json(),
        r2.chrome_trace_json(),
        "off-mode prefetch changed the trace bytes"
    );
    assert_eq!(
        r1.metrics_json(),
        r2.metrics_json(),
        "off-mode prefetch changed the metrics bytes"
    );
}

#[test]
fn prefetch_matrix_identical_across_job_counts() {
    let suite = suite_with(PrefetchConfig::with_mode(PrefetchMode::Gated));
    let specs = suite.full_matrix(&KINDS);
    let seq = suite.run_matrix(&specs, 1);
    let par = suite.run_matrix(&specs, default_jobs().max(2));
    let mut prefetched_somewhere = false;
    for ((s, p), spec) in seq.iter().zip(&par).zip(&specs) {
        assert_eq!(
            s.stats, p.stats,
            "{spec:?}: prefetch run diverged across job counts"
        );
        prefetched_somewhere |= s.stats.prefetch.issued > 0;
    }
    assert!(
        prefetched_somewhere,
        "the sweep is vacuous if no run ever issued a prefetch"
    );
}

#[test]
fn pf_counter_families_mirror_run_stats_on_every_app() {
    let suite = suite_with(PrefetchConfig::with_mode(PrefetchMode::Gated));
    let obs = ObsConfig {
        prefetch: true,
        ..ObsConfig::default()
    };
    let mut prefetched_somewhere = false;
    for (i, app) in suite.apps().iter().enumerate() {
        let spec = RunSpec {
            app: i,
            kind: RunKind::Optimized,
        };
        let (stats, report) = suite.run_one_traced(spec, obs);
        let sum = |name: &str| report.counter_family(name).iter().sum::<u64>();
        let pf = &stats.prefetch;
        let name = app.name();
        // The machine emits every obs increment from the same delta that
        // updates the summary, so the two ledgers must agree exactly.
        assert_eq!(sum("pf.candidates"), pf.candidates, "{name}: candidates");
        assert_eq!(sum("pf.gated"), pf.gated, "{name}: gated");
        assert_eq!(sum("pf.issued"), pf.issued, "{name}: issued");
        assert_eq!(sum("pf.useful"), pf.useful, "{name}: useful");
        assert_eq!(sum("pf.late"), pf.late, "{name}: late");
        assert_eq!(sum("pf.harmful"), pf.harmful, "{name}: harmful");
        assert_eq!(sum("pf.dropped"), pf.dropped, "{name}: dropped");
        assert_eq!(sum("pf.pred.correct"), pf.pred_correct, "{name}: correct");
        assert_eq!(sum("pf.pred.total"), pf.pred_total, "{name}: total");
        prefetched_somewhere |= pf.issued > 0;
    }
    assert!(
        prefetched_somewhere,
        "the parity sweep is vacuous if nothing ever prefetched"
    );
    // And the families are opt-in: a prefetch-off snapshot has none.
    let off = suite_with(PrefetchConfig::default());
    let (_, report) = off.run_one_traced(
        RunSpec {
            app: 0,
            kind: RunKind::Optimized,
        },
        ObsConfig::default(),
    );
    assert!(
        !report.metrics_json().contains("\"pf."),
        "prefetch-off metrics must not register pf.* families"
    );
}

#[test]
fn chaos_with_prefetch_on_terminates_and_conserves_demand() {
    let suite = suite_with(PrefetchConfig::with_mode(PrefetchMode::Gated));
    let topo = fault_topo(suite.sim());
    let jobs = default_jobs();
    let mut injected_somewhere = false;
    let mut pf_dropped_somewhere = false;
    for (i, app) in suite.apps().iter().enumerate() {
        let spec = RunSpec {
            app: i,
            kind: RunKind::Optimized,
        };
        let clean = suite.run_one(spec);
        // 8 plans per app across the whole intensity ladder, placement
        // horizon matched to the run length (as in the fault suite).
        let plans: Vec<FaultPlan> = (0..8)
            .map(|p| {
                let rates =
                    FaultRates::at_level((p % 7) as u32).with_horizon(clean.exec_cycles.max(1));
                FaultPlan::from_seed(31_000 + (i * 8 + p) as u64, &topo, &rates)
            })
            .collect();
        for (p, faulted) in suite.run_fault_sweep(spec, &plans, jobs).iter().enumerate() {
            let name = app.name();
            assert_eq!(
                faulted.total_accesses, clean.total_accesses,
                "{name} plan {p}: faults + prefetch changed the dynamic work"
            );
            assert_eq!(
                faulted.backstop_flushes, 0,
                "{name} plan {p}: run only terminated via the HL0900 backstop"
            );
            // Demand conservation, stated exactly as in the fault suite —
            // prefetch-class requests must not leak into either side.
            let served: u64 = faulted.mc.iter().map(|m| m.served).sum();
            let dropped: u64 = faulted.mc.iter().map(|m| m.dropped).sum();
            let issued = faulted.offchip_accesses + faulted.writebacks;
            assert_eq!(
                served + dropped,
                issued,
                "{name} plan {p}: demand requests lost or duplicated"
            );
            for (m, mc) in faulted.mc.iter().enumerate() {
                assert_eq!(
                    mc.transient_errors,
                    mc.retries + mc.dropped,
                    "{name} plan {p}: MC{m} mislaid a demand transient error"
                );
            }
            // Prefetches are speculative: issued ones either complete at
            // a controller or are dropped (at issue, in an outage, or on
            // a transient error) — never retried into the demand ledger.
            let pf = &faulted.prefetch;
            let pf_served: u64 = faulted.mc.iter().map(|m| m.pf_served).sum();
            assert!(
                pf_served <= pf.issued,
                "{name} plan {p}: more prefetches served than issued"
            );
            injected_somewhere |= faulted.dropped_requests > 0
                || faulted.rehomed_requests > 0
                || faulted.mc.iter().any(|m| m.retries > 0);
            pf_dropped_somewhere |= pf.dropped > 0;
        }
    }
    assert!(
        injected_somewhere,
        "no retries, drops, or re-homes across the whole chaos sweep"
    );
    assert!(
        pf_dropped_somewhere,
        "no plan ever dropped a prefetch; the exemption path is untested"
    );
}
