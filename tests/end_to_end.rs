//! End-to-end integration tests: the full compile → place → trace →
//! simulate pipeline over the 13-application suite (test scale), driven
//! through the parallel suite harness.
//!
//! The suite-wide assertions all read from one shared [`Suite`] sweep run
//! with `default_jobs()` workers, so the integration suite itself exercises
//! the parallel fan-out and the layout/trace caches; determinism against
//! the plain sequential `run_app` path is asserted explicitly below.

use hoploc::harness::{default_jobs, RunRecord, RunSpec, Suite};
use hoploc::layout::Granularity;
use hoploc::noc::L2ToMcMapping;
use hoploc::obs::{validate_chrome_trace, EvName, ObsConfig};
use hoploc::sim::SimConfig;
use hoploc::workloads::{all_apps, run_app, RunKind, Scale};
use std::sync::OnceLock;
use std::time::Instant;

fn setup() -> (SimConfig, L2ToMcMapping) {
    let sim = SimConfig {
        granularity: Granularity::CacheLine,
        ..SimConfig::scaled()
    };
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
    (sim, mapping)
}

/// The kinds the shared sweep covers, in record order (kinds outermost).
const SWEEP_KINDS: [RunKind; 3] = [RunKind::Baseline, RunKind::Optimized, RunKind::Optimal];

/// One parallel sweep of the whole test-scale suite, shared by every test
/// that only reads run statistics.
fn sweep() -> &'static (Suite, Vec<RunRecord>) {
    static SWEEP: OnceLock<(Suite, Vec<RunRecord>)> = OnceLock::new();
    SWEEP.get_or_init(|| {
        let (sim, mapping) = setup();
        let suite = Suite::new(all_apps(Scale::Test), mapping, sim);
        let records = suite.run_full(&SWEEP_KINDS, default_jobs());
        (suite, records)
    })
}

/// The shared-sweep record for (kind, app index).
fn rec(kind: RunKind, app: usize) -> &'static RunRecord {
    let (suite, records) = sweep();
    let k = SWEEP_KINDS
        .iter()
        .position(|&x| x == kind)
        .expect("swept kind");
    &records[k * suite.apps().len() + app]
}

#[test]
fn every_app_runs_both_sides_with_identical_work() {
    let (suite, _) = sweep();
    for (i, app) in suite.apps().iter().enumerate() {
        let base = &rec(RunKind::Baseline, i).stats;
        let opt = &rec(RunKind::Optimized, i).stats;
        assert!(base.total_accesses > 0, "{}: empty run", app.name());
        assert_eq!(
            base.total_accesses,
            opt.total_accesses,
            "{}: the layout transformation changed the dynamic work",
            app.name()
        );
        assert!(
            base.exec_cycles > 0 && opt.exec_cycles > 0,
            "{}",
            app.name()
        );
    }
}

#[test]
fn optimization_localizes_offchip_traffic_suite_wide() {
    // Pooled over the suite, optimized off-chip messages must traverse
    // fewer links — the paper's central mechanism.
    let (suite, _) = sweep();
    let mut base_hops = 0.0;
    let mut opt_hops = 0.0;
    let mut n = 0.0;
    for i in 0..suite.apps().len() {
        let base = &rec(RunKind::Baseline, i).stats;
        let opt = &rec(RunKind::Optimized, i).stats;
        if base.offchip_accesses > 100 {
            base_hops += base.net.off_chip.avg_hops();
            opt_hops += opt.net.off_chip.avg_hops();
            n += 1.0;
        }
    }
    assert!(n >= 5.0, "too few apps with off-chip traffic at test scale");
    assert!(
        opt_hops / n < base_hops / n,
        "optimized avg hops {:.2} !< baseline {:.2}",
        opt_hops / n,
        base_hops / n
    );
}

#[test]
fn optimal_scheme_is_an_upper_bound_on_localization() {
    // The §2 optimal scheme uses only nearest controllers, so its off-chip
    // hop count lower-bounds any layout's.
    let (suite, _) = sweep();
    for (i, app) in suite.apps().iter().enumerate().take(4) {
        let optimal = &rec(RunKind::Optimal, i).stats;
        let opt = &rec(RunKind::Optimized, i).stats;
        if optimal.offchip_accesses > 100 {
            assert!(
                optimal.net.off_chip.avg_hops() <= opt.net.off_chip.avg_hops() + 0.3,
                "{}: optimal hops {:.2} > optimized {:.2}",
                app.name(),
                optimal.net.off_chip.avg_hops(),
                opt.net.off_chip.avg_hops()
            );
        }
    }
}

#[test]
fn page_and_cacheline_interleaving_both_work() {
    let (_, mapping) = setup();
    for granularity in [Granularity::CacheLine, Granularity::Page] {
        let sim = SimConfig {
            granularity,
            ..SimConfig::scaled()
        };
        let suite = Suite::new(
            vec![hoploc::workloads::swim(Scale::Test)],
            mapping.clone(),
            sim,
        );
        let recs = suite.run_full(&[RunKind::Baseline, RunKind::Optimized], 2);
        assert_eq!(
            recs[0].stats.total_accesses, recs[1].stats.total_accesses,
            "{granularity:?}"
        );
    }
}

#[test]
fn runs_are_deterministic() {
    // Repeat runs of one cell are bit-identical...
    let (sim, mapping) = setup();
    let app = hoploc::workloads::mgrid(Scale::Test);
    let a = run_app(&app, &mapping, &sim, RunKind::Optimized);
    let b = run_app(&app, &mapping, &sim, RunKind::Optimized);
    assert_eq!(a, b);

    // ...and the parallel shared sweep is bit-identical, record for
    // record, to a fresh sequential (jobs = 1) evaluation of the same
    // matrix on a separate Suite instance. `RunStats: PartialEq` compares
    // every field, including the floating-point link utilizations.
    let (suite, records) = sweep();
    let (sim, mapping) = setup();
    let seq_suite = Suite::new(all_apps(Scale::Test), mapping, sim);
    let specs = seq_suite.full_matrix(&SWEEP_KINDS);
    let seq = seq_suite.run_matrix(&specs, 1);
    assert_eq!(records.len(), seq.len());
    for ((p, q), spec) in records.iter().zip(&seq).zip(&specs) {
        assert_eq!(
            p.stats,
            q.stats,
            "parallel sweep diverged from sequential on {} {:?}",
            suite.apps()[spec.app].name(),
            spec.kind
        );
    }
}

#[test]
fn parallel_sweep_is_at_least_twice_as_fast() {
    // Acceptance check: with ≥ 4 workers the harness sweep (fan-out +
    // caches, cold start) beats the plain sequential `run_app` loop it
    // replaced by ≥ 2× on the full test-scale matrix.
    if default_jobs() < 4 {
        eprintln!("skipping speedup check: fewer than 4 hardware threads");
        return;
    }
    let (sim, mapping) = setup();
    let kinds = [RunKind::Baseline, RunKind::Optimized];

    let suite = Suite::new(all_apps(Scale::Test), mapping.clone(), sim.clone());
    let specs = suite.full_matrix(&kinds);
    let start = Instant::now();
    let par = suite.run_matrix(&specs, default_jobs());
    let par_time = start.elapsed();

    let start = Instant::now();
    let mut seq = Vec::with_capacity(specs.len());
    for &RunSpec { app, kind } in &specs {
        seq.push(run_app(&suite.apps()[app], &mapping, &sim, kind));
    }
    let seq_time = start.elapsed();

    for (p, q) in par.iter().zip(&seq) {
        assert_eq!(&p.stats, q, "speedup arms diverged");
    }
    assert!(
        par_time.as_secs_f64() * 2.0 <= seq_time.as_secs_f64(),
        "parallel sweep {par_time:?} not 2x faster than sequential {seq_time:?}"
    );
}

#[test]
fn traced_sweep_is_deterministic_and_mirrors_stats() {
    // The observability layer must not perturb the simulation, and its
    // exported artifacts must be byte-identical at any worker count.
    let (sim, mapping) = setup();
    let apps = vec![
        hoploc::workloads::swim(Scale::Test),
        hoploc::workloads::mgrid(Scale::Test),
    ];
    let kinds = [RunKind::Baseline, RunKind::Optimized];
    let par_suite = Suite::new(apps.clone(), mapping.clone(), sim.clone());
    let specs = par_suite.full_matrix(&kinds);
    let par = par_suite.run_matrix_traced(&specs, default_jobs().max(2), ObsConfig::default());
    let seq_suite = Suite::new(apps, mapping, sim);
    let seq = seq_suite.run_matrix_traced(&specs, 1, ObsConfig::default());
    for ((p, q), spec) in par.iter().zip(&seq).zip(&specs) {
        assert_eq!(p.stats, q.stats, "traced stats diverged on {spec:?}");
        assert_eq!(
            p.report.chrome_trace_json(),
            q.report.chrome_trace_json(),
            "event stream not byte-identical across job counts on {spec:?}"
        );
        assert_eq!(
            p.report.metrics_json(),
            q.report.metrics_json(),
            "metrics snapshot not byte-identical across job counts on {spec:?}"
        );
        // The counters the figures read mirror RunStats exactly — this is
        // the acceptance evidence for the fig13/fig15/fig18 ports.
        assert_eq!(p.report.offchip(), p.stats.offchip_accesses);
        for mc in 0..p.stats.mc.len() {
            assert_eq!(
                p.report.mc_request_shares(mc),
                p.stats.mc_request_shares(mc)
            );
        }
        assert_eq!(
            p.report.hop_histogram("offchip"),
            &p.stats.net.off_chip.hop_histogram[..],
        );
        assert_eq!(
            p.report.hop_histogram("onchip"),
            &p.stats.net.on_chip.hop_histogram[..],
        );
        let occ = p.report.bank_queue_occupancy();
        let want = p.stats.bank_queue_occupancy();
        assert!((occ - want).abs() < 1e-12, "{spec:?}: {occ} != {want}");
    }
}

#[test]
fn every_offchip_request_gets_a_full_span_trail() {
    let (sim, mapping) = setup();
    let suite = Suite::new(vec![hoploc::workloads::swim(Scale::Test)], mapping, sim);
    let (stats, report) = suite.run_one_traced(
        RunSpec {
            app: 0,
            kind: RunKind::Baseline,
        },
        ObsConfig::default(),
    );
    let events = report.events();
    // One closing `offchip` span per off-chip demand access...
    let closed = events.iter().filter(|e| e.name == EvName::Offchip).count();
    assert_eq!(closed as u64, stats.offchip_accesses);
    // ...and each of those requests also left NoC hops, an MC bank
    // service, and a reply on its trail.
    for name in [EvName::HopRequest, EvName::HopReply] {
        assert!(
            events.iter().filter(|e| e.name == name).count() as u64 >= stats.offchip_accesses,
            "{name:?} spans missing"
        );
    }
    let services = events
        .iter()
        .filter(|e| e.name == EvName::BankRowHit || e.name == EvName::BankRowMiss)
        .count() as u64;
    assert!(
        services >= stats.offchip_accesses,
        "bank services {services} < off-chip accesses {}",
        stats.offchip_accesses
    );
    // The exported trace round-trips through the schema validator.
    let summary =
        validate_chrome_trace(&report.chrome_trace_json()).expect("schema-valid Chrome trace");
    assert_eq!(summary.span_events, events.len());
}

#[test]
fn first_touch_runs_and_respects_clusters() {
    let (_, mapping) = setup();
    let sim = SimConfig {
        granularity: Granularity::Page,
        ..SimConfig::scaled()
    };
    let suite = Suite::new(vec![hoploc::workloads::gafort(Scale::Test)], mapping, sim);
    let ft = suite.run_one(RunSpec {
        app: 0,
        kind: RunKind::FirstTouch,
    });
    assert!(ft.total_accesses > 0);
    assert_eq!(
        ft.os_fallbacks, 0,
        "ample memory: no fallback allocations expected"
    );
}
