//! End-to-end integration tests: the full compile → place → trace →
//! simulate pipeline over the 13-application suite (test scale).

use hoploc::layout::Granularity;
use hoploc::noc::L2ToMcMapping;
use hoploc::sim::SimConfig;
use hoploc::workloads::{all_apps, run_app, RunKind, Scale};

fn setup() -> (SimConfig, L2ToMcMapping) {
    let sim = SimConfig {
        granularity: Granularity::CacheLine,
        ..SimConfig::scaled()
    };
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
    (sim, mapping)
}

#[test]
fn every_app_runs_both_sides_with_identical_work() {
    let (sim, mapping) = setup();
    for app in all_apps(Scale::Test) {
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        assert!(base.total_accesses > 0, "{}: empty run", app.name());
        assert_eq!(
            base.total_accesses,
            opt.total_accesses,
            "{}: the layout transformation changed the dynamic work",
            app.name()
        );
        assert!(
            base.exec_cycles > 0 && opt.exec_cycles > 0,
            "{}",
            app.name()
        );
    }
}

#[test]
fn optimization_localizes_offchip_traffic_suite_wide() {
    // Pooled over the suite, optimized off-chip messages must traverse
    // fewer links — the paper's central mechanism.
    let (sim, mapping) = setup();
    let mut base_hops = 0.0;
    let mut opt_hops = 0.0;
    let mut n = 0.0;
    for app in all_apps(Scale::Test) {
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        if base.offchip_accesses > 100 {
            base_hops += base.net.off_chip.avg_hops();
            opt_hops += opt.net.off_chip.avg_hops();
            n += 1.0;
        }
    }
    assert!(n >= 5.0, "too few apps with off-chip traffic at test scale");
    assert!(
        opt_hops / n < base_hops / n,
        "optimized avg hops {:.2} !< baseline {:.2}",
        opt_hops / n,
        base_hops / n
    );
}

#[test]
fn optimal_scheme_is_an_upper_bound_on_localization() {
    // The §2 optimal scheme uses only nearest controllers, so its off-chip
    // hop count lower-bounds any layout's.
    let (sim, mapping) = setup();
    for app in all_apps(Scale::Test).into_iter().take(4) {
        let optimal = run_app(&app, &mapping, &sim, RunKind::Optimal);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        if optimal.offchip_accesses > 100 {
            assert!(
                optimal.net.off_chip.avg_hops() <= opt.net.off_chip.avg_hops() + 0.3,
                "{}: optimal hops {:.2} > optimized {:.2}",
                app.name(),
                optimal.net.off_chip.avg_hops(),
                opt.net.off_chip.avg_hops()
            );
        }
    }
}

#[test]
fn page_and_cacheline_interleaving_both_work() {
    let (_, mapping) = setup();
    for granularity in [Granularity::CacheLine, Granularity::Page] {
        let sim = SimConfig {
            granularity,
            ..SimConfig::scaled()
        };
        let app = hoploc::workloads::swim(Scale::Test);
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        assert_eq!(base.total_accesses, opt.total_accesses, "{granularity:?}");
    }
}

#[test]
fn runs_are_deterministic() {
    let (sim, mapping) = setup();
    let app = hoploc::workloads::mgrid(Scale::Test);
    let a = run_app(&app, &mapping, &sim, RunKind::Optimized);
    let b = run_app(&app, &mapping, &sim, RunKind::Optimized);
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.offchip_accesses, b.offchip_accesses);
    assert_eq!(a.node_mc_requests, b.node_mc_requests);
}

#[test]
fn first_touch_runs_and_respects_clusters() {
    let (_, mapping) = setup();
    let sim = SimConfig {
        granularity: Granularity::Page,
        ..SimConfig::scaled()
    };
    let app = hoploc::workloads::gafort(Scale::Test);
    let ft = run_app(&app, &mapping, &sim, RunKind::FirstTouch);
    assert!(ft.total_accesses > 0);
    assert_eq!(
        ft.os_fallbacks, 0,
        "ample memory: no fallback allocations expected"
    );
}
