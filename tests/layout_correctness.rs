//! Cross-crate layout correctness: for every application and both cache
//! organizations, the customized layouts must be bijective renamings whose
//! interleave units land on the owner's controllers.

use hoploc::affine::ArrayId;
use hoploc::layout::{optimize_program, Granularity, L2Mode, PassConfig};
use hoploc::noc::{L2ToMcMapping, McId, McPlacement, Mesh};
use hoploc::sim::AddressSpace;
use hoploc::workloads::{all_apps, Scale};
use std::collections::HashSet;

fn mapping() -> L2ToMcMapping {
    L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners)
}

/// Walks every element of every optimized array of an app, checking
/// injectivity and bounds.
fn check_bijection(cfg: PassConfig) {
    for app in all_apps(Scale::Test) {
        let layout = optimize_program(&app.program, &mapping(), cfg);
        for (i, decl) in app.program.arrays().iter().enumerate() {
            let l = layout.layout(ArrayId(i));
            let dims = decl.dims();
            let mut seen = HashSet::new();
            let mut walk = vec![0i64; dims.len()];
            'outer: loop {
                let off = l.place(&walk);
                assert!(
                    off >= 0 && off < l.span_elements(),
                    "{}::{}: offset {off} out of span {}",
                    app.name(),
                    decl.name(),
                    l.span_elements()
                );
                assert!(
                    seen.insert(off),
                    "{}::{}: collision at {walk:?}",
                    app.name(),
                    decl.name()
                );
                // Advance the odometer; stop once it wraps around.
                let mut k = dims.len();
                loop {
                    if k == 0 {
                        break 'outer;
                    }
                    k -= 1;
                    walk[k] += 1;
                    if walk[k] < dims[k] {
                        break;
                    }
                    walk[k] = 0;
                }
            }
        }
    }
}

#[test]
fn private_layouts_are_bijective_for_all_apps() {
    check_bijection(PassConfig::default());
}

#[test]
fn shared_layouts_are_bijective_for_all_apps() {
    check_bijection(PassConfig {
        l2_mode: L2Mode::Shared,
        ..PassConfig::default()
    });
}

#[test]
fn page_layouts_are_bijective_for_all_apps() {
    check_bijection(PassConfig {
        granularity: Granularity::Page,
        ..PassConfig::default()
    });
}

#[test]
fn optimized_units_respect_cluster_mcs() {
    let mapping = mapping();
    for app in all_apps(Scale::Test) {
        let layout = optimize_program(&app.program, &mapping, PassConfig::default());
        for (i, decl) in app.program.arrays().iter().enumerate() {
            let l = layout.layout(ArrayId(i));
            if l.is_original() {
                continue;
            }
            let pe = l.unit_elems();
            let dims = decl.dims();
            // Sample a diagonal-ish sweep.
            let samples = 64.min(dims[0]);
            for s in 0..samples {
                let dvec: Vec<i64> = dims
                    .iter()
                    .map(|&d| (s * d / samples).clamp(0, d - 1))
                    .collect();
                let owner = l.owner_thread(&dvec).expect("localized");
                let node = layout.binding().node_of(owner);
                let unit = l.place(&dvec) / pe;
                let mc = McId((unit % mapping.num_mcs() as i64) as u16);
                assert!(
                    mapping.mcs_of_node(node).contains(&mc),
                    "{}::{}: element {dvec:?} on {mc} not serving {node}",
                    app.name(),
                    decl.name()
                );
            }
        }
    }
}

#[test]
fn desired_page_map_matches_os_semantics() {
    // Under page interleaving, the desired map the layout exports must
    // agree with what the placement function computes.
    let mapping = mapping();
    let cfg = PassConfig {
        granularity: Granularity::Page,
        ..PassConfig::default()
    };
    for app in all_apps(Scale::Test).into_iter().take(5) {
        let layout = optimize_program(&app.program, &mapping, cfg);
        let space = AddressSpace::build(&app.program, &layout, 0);
        let desired = space.desired_page_mcs(&app.program, &layout, 4096);
        for (i, decl) in app.program.arrays().iter().enumerate() {
            let l = layout.layout(ArrayId(i));
            if l.is_original() {
                continue;
            }
            let dvec = vec![0i64; decl.rank()];
            let vaddr = space.addr_of(&layout, ArrayId(i), &dvec);
            let vpn = vaddr / 4096;
            let unit = l.place(&dvec) / l.unit_elems();
            assert_eq!(
                desired.get(&vpn).copied(),
                l.desired_unit_mc(unit),
                "{}::{}: OS map disagrees with layout",
                app.name(),
                decl.name()
            );
        }
    }
}
