//! End-to-end suite for the design-space search (`hoploc search`).
//!
//! Two headline assertions from the issue's acceptance list:
//!
//! 1. **The search wins.** From the committed seed, the machine-found
//!    design beats *both* paper placements (diamond and edge) on
//!    bench-scale applications, measured by cycle-sim completion time —
//!    not by the estimator that guided the search.
//! 2. **Serve streams are byte-identical.** A `search` job submitted to
//!    `hoploc-serve` over real loopback TCP streams exactly the progress
//!    event lines and final report that a direct `hoploc search --json -`
//!    run produces for the same seed, and resubmissions are served from
//!    cache with the same bytes.

use hoploc::layout::Granularity;
use hoploc::search::{search_app, Objective, SearchConfig};
use hoploc::serve::{
    Client, EngineCaps, JobSpec, SearchSpec, ServeConfig, Server, SubmitStatus, SuiteEngine,
};
use hoploc::sim::SimConfig;
use hoploc::workloads::{all_apps, App, RunKind, Scale};
use std::sync::Arc;

/// The CLI's machine configuration (`fn sim` in the binary): cacheline
/// interleaving over the scaled mesh, private L2s.
fn cli_sim() -> SimConfig {
    SimConfig {
        granularity: Granularity::CacheLine,
        ..SimConfig::scaled()
    }
}

fn app_named(name: &str, scale: Scale) -> App {
    all_apps(scale)
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or_else(|| panic!("unknown app {name}"))
}

#[test]
fn found_designs_beat_both_paper_placements_at_bench_scale() {
    // Seed 0 / budget 300 is the committed configuration (CI smoke job,
    // EXPERIMENTS.md table): it beats diamond AND edge on 12 of the 13
    // bench apps. Three of the cheapest winners keep this test tier-1
    // fast while still proving the "≥ 3 apps" acceptance bar.
    let cfg = SearchConfig {
        seed: 0,
        budget: 300,
        ..SearchConfig::new(cli_sim(), Scale::Bench)
    };
    for name in ["gafort", "apsi", "mgrid"] {
        let app = app_named(name, Scale::Bench);
        let report = search_app(&app, &cfg, &mut |_| {});
        assert!(
            report.found_cycles < report.diamond_cycles,
            "{name}: found {} must beat diamond {}",
            report.found_cycles,
            report.diamond_cycles
        );
        assert!(
            report.found_cycles < report.edge_cycles,
            "{name}: found {} must beat edge {}",
            report.found_cycles,
            report.edge_cycles
        );
        assert_eq!(report.seed, 0, "the winning configuration is committed");
    }
}

#[test]
fn serve_watch_stream_is_byte_identical_to_a_direct_search() {
    let engine = Arc::new(SuiteEngine::new(EngineCaps::default()));
    let server = Server::bind("127.0.0.1:0", engine, ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("bound addr");
    let handle = std::thread::spawn(move || server.run());

    let spec = JobSpec {
        app: "gafort".into(),
        kind: RunKind::Optimized,
        scale: Scale::Test,
        search: Some(SearchSpec {
            seed: 9,
            budget: 24,
            objective: "offchip+hops".into(),
        }),
        ..JobSpec::default()
    };
    let mut client = Client::connect(addr).expect("connect");
    let (id, status, _) = client.submit_until_accepted(&spec, 10).expect("submit");
    assert_eq!(status, SubmitStatus::Queued);
    let mut streamed = Vec::new();
    let served = client
        .watch(id, &mut |event| streamed.push(event))
        .expect("watch to completion");

    // The direct run `hoploc search gafort --scale test --seed 9
    // --budget 24 --json -` reduces to exactly this call.
    let cfg = SearchConfig {
        seed: 9,
        budget: 24,
        objective: Objective::parse("offchip,hops").expect("valid objective"),
        ..SearchConfig::new(cli_sim(), Scale::Test)
    };
    let app = app_named("gafort", Scale::Test);
    let mut direct = Vec::new();
    let report = search_app(&app, &cfg, &mut |event| direct.push(event));
    assert_eq!(
        streamed, direct,
        "served progress events must match the direct run byte-for-byte"
    );
    assert_eq!(
        served,
        report.to_json(),
        "the served final report must match the direct run byte-for-byte"
    );

    // Resubmission: a cache hit with the same bytes, and `watch` on a
    // cached job degrades to the final line (no progress replay — the
    // cache stores results, not streams).
    let (id2, status2, _) = client.submit_until_accepted(&spec, 10).expect("resubmit");
    assert_eq!(status2, SubmitStatus::Cached);
    assert_ne!(id, id2);
    assert_eq!(client.result(id2).expect("cached result"), served);

    // An ordinary cycle job on the same connection still works, and its
    // watch is just a result with zero events.
    let plain = JobSpec {
        app: "gafort".into(),
        kind: RunKind::Baseline,
        scale: Scale::Test,
        ..JobSpec::default()
    };
    let (id3, _, _) = client.submit_until_accepted(&plain, 10).expect("submit");
    let mut plain_events = Vec::new();
    let plain_result = client
        .watch(id3, &mut |e| plain_events.push(e))
        .expect("watch plain job");
    assert!(plain_events.is_empty(), "cycle jobs emit no progress");
    assert!(plain_result.contains("\"exec_cycles\""), "{plain_result}");

    client.drain().expect("drain");
    handle.join().expect("server thread");
}
