//! Shape tests: qualitative claims of the paper that must hold in any
//! healthy build, checked at test scale so CI stays fast. Quantitative
//! reproduction lives in the `cargo bench` harnesses and EXPERIMENTS.md.

use hoploc::layout::{select_mapping, Granularity, L2Mode, SelectModel};
use hoploc::noc::{L2ToMcMapping, McPlacement, Mesh};
use hoploc::sim::SimConfig;
use hoploc::workloads::{
    all_apps, fma3d, mixes, run_app, run_app_threads, run_mix, swim, weighted_speedup, wupwise,
    RunKind, Scale,
};

fn setup() -> (SimConfig, L2ToMcMapping) {
    let sim = SimConfig {
        granularity: Granularity::CacheLine,
        ..SimConfig::scaled()
    };
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
    (sim, mapping)
}

#[test]
fn optimal_scheme_improves_execution_suite_wide() {
    // §2: "optimizing off-chip accesses has significant potential".
    let (sim, mapping) = setup();
    let mut wins = 0;
    let mut total = 0;
    for app in all_apps(Scale::Test) {
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let optimal = run_app(&app, &mapping, &sim, RunKind::Optimal);
        total += 1;
        if optimal.exec_cycles < base.exec_cycles {
            wins += 1;
        }
    }
    assert!(
        wins * 10 >= total * 8,
        "optimal scheme won only {wins}/{total}"
    );
}

#[test]
fn compiler_selection_separates_m1_and_m2_apps() {
    // §4: the analysis picks M2 for fma3d (high MLP demand), M1 for a
    // regular stencil like wupwise.
    let mesh = Mesh::new(8, 8);
    let candidates = [
        L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Corners),
        L2ToMcMapping::halves(mesh, &McPlacement::Corners),
    ];
    let model = SelectModel::default();
    assert_eq!(
        select_mapping(&candidates, &wupwise(Scale::Test).profile, &model),
        0
    );
    assert_eq!(
        select_mapping(&candidates, &fma3d(Scale::Test).profile, &model),
        1
    );
}

#[test]
fn high_pressure_apps_have_highest_bank_occupancy() {
    // Figure 18's shape: fma3d and minighost stand out.
    let (sim, mapping) = setup();
    let mut occ: Vec<(String, f64)> = all_apps(Scale::Test)
        .into_iter()
        .map(|app| {
            let s = run_app(&app, &mapping, &sim, RunKind::Optimized);
            (app.name().to_string(), s.bank_queue_occupancy())
        })
        .collect();
    occ.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    // At test scale the exact ranking shifts with footprints; the robust
    // claim is that both pressure apps sit in the top half of the suite
    // (at bench scale they are the clear top two — see fig18_bank_queue).
    let top_half: Vec<&str> = occ.iter().take(7).map(|(n, _)| n.as_str()).collect();
    assert!(
        top_half.contains(&"fma3d") && top_half.contains(&"minighost"),
        "expected fma3d and minighost in the top half, got {occ:?}"
    );
}

#[test]
fn shared_l2_mode_also_benefits() {
    // Figure 22's shape: the approach works under SNUCA too.
    let (mut sim, mapping) = setup();
    sim.l2_mode = L2Mode::Shared;
    let app = swim(Scale::Test);
    let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
    let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
    assert!(
        opt.net.off_chip.avg_hops() <= base.net.off_chip.avg_hops(),
        "shared-L2 localization failed: {:.2} > {:.2}",
        opt.net.off_chip.avg_hops(),
        base.net.off_chip.avg_hops()
    );
}

#[test]
fn more_threads_per_core_amplify_contention() {
    // Figure 24's mechanism: baseline contention grows with threads/core.
    // Use the suite's most memory-intense app so the effect is visible at
    // test scale.
    let (sim, mapping) = setup();
    let app = fma3d(Scale::Test);
    let one = run_app_threads(&app, &mapping, &sim, RunKind::Baseline, 1);
    let two = run_app_threads(&app, &mapping, &sim, RunKind::Baseline, 2);
    assert_eq!(two.total_accesses, one.total_accesses, "same dynamic work");
    assert!(
        two.onchip_net_latency() + two.offchip_net_latency()
            > one.onchip_net_latency() + one.offchip_net_latency(),
        "doubling threads per core did not raise network latency"
    );
}

#[test]
fn multiprogram_mixes_speed_up() {
    // Figure 25's shape: weighted speedup above 1 for the mixes.
    let (sim, mapping) = setup();
    let mut above = 0;
    let mut total = 0;
    for (_, apps) in mixes(Scale::Test) {
        let base = run_mix(&apps, &mapping, &sim, RunKind::Baseline);
        let opt = run_mix(&apps, &mapping, &sim, RunKind::Optimized);
        total += 1;
        if weighted_speedup(&base, &opt) > 0.98 {
            above += 1;
        }
    }
    assert!(
        above >= total - 1,
        "only {above}/{total} mixes near/above parity"
    );
}

#[test]
fn larger_meshes_benefit_more() {
    // Figure 21's trend, checked between the extremes.
    let app = swim(Scale::Test);
    let saving = |mesh: Mesh| -> f64 {
        let sim = SimConfig {
            mesh,
            granularity: Granularity::CacheLine,
            ..SimConfig::scaled()
        };
        let mapping = L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Corners);
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        (base.exec_cycles as f64 - opt.exec_cycles as f64) / base.exec_cycles as f64
    };
    let small = saving(Mesh::new(4, 4));
    let large = saving(Mesh::new(8, 8));
    assert!(
        large > small - 0.02,
        "8x8 saving {large:.3} not above 4x4 saving {small:.3}"
    );
}
