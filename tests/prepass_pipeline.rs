//! The full §6.1 compiler pipeline: dependence-guided loop restructuring
//! first, the off-chip layout pass second — verifying the two compose and
//! that the paper's §1 claim (data transformations are dependence-free)
//! holds end to end.

use hoploc::affine::{
    find_parallel_loop, nest_dependences, parallelization_is_legal, permute_loops, strip_mine_loop,
    test_dependence, AffineAccess, ArrayDecl, ArrayId, ArrayRef, Dependence, IMat, IVec, Loop,
    LoopNest, Program, Statement,
};
use hoploc::layout::{determine_data_to_core, optimize_program, PassConfig};
use hoploc::noc::{L2ToMcMapping, McPlacement, Mesh};

fn mapping() -> L2ToMcMapping {
    L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners)
}

/// A nest written "badly": the dependence is carried by the declared
/// parallel loop, while the other loop is actually the safe one.
fn badly_parallelized() -> LoopNest {
    // X[i][j] = X[i-1][j], parallel dim 0 (illegal).
    let m = IMat::identity(2);
    LoopNest::new(
        vec![Loop::constant(1, 128), Loop::constant(0, 128)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::write(ArrayId(0), AffineAccess::new(m.clone(), IVec::zeros(2))),
                ArrayRef::read(ArrayId(0), AffineAccess::new(m, IVec::new(vec![-1, 0]))),
            ],
            2,
        )],
        1,
    )
}

#[test]
fn prepass_repairs_an_illegal_parallelization() {
    let nest = badly_parallelized();
    assert!(
        !parallelization_is_legal(&nest),
        "fixture must start illegal"
    );

    // The pre-pass finds the safe loop and interchanges it outward.
    let safe = find_parallel_loop(&nest).expect("loop 1 is uncarried");
    assert_eq!(safe, 1);
    let fixed = permute_loops(&nest, &[1, 0]).expect("interchange is legal here");
    // After interchange the parallel dim followed its loop to position 1;
    // re-declare the now-outermost (old loop 1) as parallel.
    let fixed = LoopNest::new(
        fixed.loops().to_vec(),
        0,
        fixed.body().to_vec(),
        fixed.weight(),
    );
    assert!(
        parallelization_is_legal(&fixed),
        "pre-pass output must be legal"
    );

    // The layout pass runs on the restructured nest.
    let mut p = Program::new("prepass");
    let x = p.add_array(ArrayDecl::new("X", vec![128, 128], 8));
    assert_eq!(x, ArrayId(0));
    p.add_nest(fixed);
    let out = optimize_program(&p, &mapping(), PassConfig::default());
    assert!(
        !out.layout(x).is_original(),
        "restructured nest must be optimizable"
    );
    assert_eq!(out.refs_satisfied(), 1.0);
}

#[test]
fn layout_transformation_never_changes_dependences() {
    // §1: "data transformations are essentially a kind of renaming and not
    // affected by dependences" — check over every app's nests: the U
    // chosen by the pass leaves every characterizable dependence distance
    // intact.
    for app in hoploc::workloads::all_apps(hoploc::workloads::Scale::Test) {
        for (i, _) in app.program.arrays().iter().enumerate() {
            let Ok(d2c) = determine_data_to_core(&app.program, ArrayId(i)) else {
                continue;
            };
            for nest in app.program.nests() {
                for (a, aa) in nest.affine_refs() {
                    for (b, bb) in nest.affine_refs() {
                        if a.array != ArrayId(i) || b.array != ArrayId(i) {
                            continue;
                        }
                        let before = test_dependence(aa, bb);
                        let after =
                            test_dependence(&aa.transformed(&d2c.u), &bb.transformed(&d2c.u));
                        if let (Dependence::Uniform(x), Dependence::Uniform(y)) = (&before, &after)
                        {
                            assert_eq!(x, y, "{}: U changed a distance vector", app.name());
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn strip_mining_composes_with_the_layout_pass() {
    // Tile the sequential loop of a stencil, then optimize: the pass must
    // still find the same partitioning dimension.
    let m = IMat::identity(2);
    let nest = LoopNest::new(
        vec![Loop::constant(0, 128), Loop::constant(0, 128)],
        0,
        vec![Statement::new(
            vec![ArrayRef::read(
                ArrayId(0),
                AffineAccess::new(m, IVec::zeros(2)),
            )],
            1,
        )],
        1,
    );
    let tiled = strip_mine_loop(&nest, 1, 16).expect("tiling is legal");
    assert_eq!(tiled.depth(), 3);

    let mut p = Program::new("tiled");
    let x = p.add_array(ArrayDecl::new("X", vec![128, 128], 8));
    p.add_nest(tiled);
    let out = optimize_program(&p, &mapping(), PassConfig::default());
    assert!(!out.layout(x).is_original());
    // Partition row must still track the parallel iterator through the
    // 3-deep access matrix.
    let d2c = determine_data_to_core(&p, x).unwrap();
    assert_ne!(d2c.g_v[0], 0, "partition still follows data dim 0");
}

#[test]
fn dependence_census_over_the_suite() {
    // Sanity over the modelled applications: every nest yields a
    // characterization (not a crash), and Jacobi-style nests are clean
    // while SSOR-style nests carry dependences — matching the kernels they
    // model.
    let mut carried = Vec::new();
    for app in hoploc::workloads::all_apps(hoploc::workloads::Scale::Test) {
        for (k, nest) in app.program.nests().iter().enumerate() {
            let _ = nest_dependences(nest);
            if !parallelization_is_legal(nest) {
                carried.push(format!("{}#{k}", app.name()));
            }
        }
    }
    // Gauss-Seidel-style updates in place: mgrid's relaxation, applu's
    // sweeps, the stencils that write their own input. Their presence is
    // structural, not a bug; their absence would mean the models lost
    // their in-place character.
    assert!(
        carried.iter().any(|s| s.starts_with("applu")),
        "applu's SSOR must carry a dependence, got {carried:?}"
    );
}
